"""End-to-end assertions on every experiment's quick-scale output.

These check the *scientific claims* each table is supposed to exhibit —
not just that code runs.
"""


import pytest

from repro.analysis.experiments import EXPERIMENTS, run_experiment


@pytest.fixture(scope="module")
def tables():
    return {name: EXPERIMENTS[name]() for name in EXPERIMENTS}


class TestRegistry:
    def test_all_registered(self, tables):
        assert set(tables) == {
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
            "A1", "A2", "A3", "STRESS", "CHURN-STRESS", "FUZZ",
            "E9-SCALE", "ABLATION",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_case_insensitive(self):
        table = run_experiment("e2")
        assert table.rows

    def test_every_table_renders(self, tables):
        for table in tables.values():
            rendered = table.render()
            assert rendered
            assert table.to_markdown()


class TestClaims:
    def test_e1_halving_and_validity_hold(self, tables):
        table = tables["E1"]
        assert all(tables["E1"].column("halved every iter"))
        assert all(table.column("validity ok"))

    def test_e2_validity_and_consistency_hold(self, tables):
        table = tables["E2"]
        assert all(table.column("validity ok"))
        assert all(table.column("consistency ok"))

    def test_e3_estimates_within_delta(self, tables):
        table = tables["E3"]
        assert all(table.column("within (L12)"))
        assert all(table.column("within (L13)"))

    def test_e4_skew_within_bound(self, tables):
        table = tables["E4"]
        assert all(table.column("within"))
        assert all(table.column("live"))
        # Steady-state skew sits well below the worst-case bound.
        for steady, bound in zip(
            table.column("steady skew"), table.column("bound S")
        ):
            assert steady < bound

    def test_e5_resilience_gap(self, tables):
        table = tables["E5"]
        rows = {
            (row[0], row[1]): row for row in table.rows
        }  # (f, algorithm)
        # CPS holds everywhere.
        for (f, algorithm), row in rows.items():
            if algorithm == "CPS":
                assert row[6], f"CPS broke at f={f}"
        # LW holds at its design resilience and breaks at f = 4 >= n/3.
        assert rows[(2, "Lynch-Welch")][6]
        assert not rows[(4, "Lynch-Welch")][6]

    def test_e6_ordering_of_algorithms(self, tables):
        table = tables["E6"]
        by_algo = {}
        for row in table.rows:
            by_algo.setdefault(row[0], []).append(row)
        # Signed relay skew is order d (>= 0.3 d), CPS well below.
        for row in by_algo["Signed relay [28]/[21]"]:
            assert row[4] > 0.3
        for row in by_algo["CPS (this paper)"]:
            assert row[4] < 0.05
        # Chain relay grows with n.
        chain = by_algo["Chain relay [2]-style"]
        assert chain[-1][4] > chain[0][4]

    def test_e7_lower_bound_met_exactly(self, tables):
        table = tables["E7"]
        assert all(table.column(">= bound"))
        for identity, expected in zip(
            table.column("identity sum"), table.column("2u~")
        ):
            assert identity == pytest.approx(expected, abs=1e-6)

    def test_e8_degradation_with_u_tilde(self, tables):
        table = tables["E8"]
        rows = table.rows
        # u~ = u: within S, zero rejections.
        assert rows[0][4]
        assert rows[0][5] == 0
        # u~ >> u: bound violated, rejections of honest dealers happen.
        assert not rows[-1][4]
        assert rows[-1][5] > 0

    def test_e9_periods_within_bounds(self, tables):
        assert all(tables["E9"].column("within"))

    def test_e10_contracts_to_floor(self, tables):
        table = tables["E10"]
        skews = table.column("skew")
        bound = table.column("bound S")[0]
        assert skews[0] == pytest.approx(bound, rel=0.1)  # worst start
        assert min(skews) < skews[0] / 4                  # contraction
        assert all(s <= bound + 1e-9 for s in skews)

    def test_a1_echo_rejection_matters(self, tables):
        table = tables["A1"]
        rows = {row[0]: row for row in table.rows}
        assert rows[True][5]       # with the rule: Lemma 13 holds
        assert not rows[False][5]  # without: consistency broken
        assert rows[False][2] > 0  # the staggered dealer was accepted

    def test_a2_discard_rule_matters(self, tables):
        table = tables["A2"]
        rows = {row[0]: row for row in table.rows}
        assert rows["f-b"][2] == "ok"
        assert rows["f"][2] != "ok"

    def test_e9_scale_bound_holds_at_all_sizes(self, tables):
        table = tables["E9-SCALE"]
        assert sorted(table.column("n")) == [100, 1000, 10000]
        assert all(table.column("within"))
        assert all(table.column("live"))
        # S is n-independent: every row reports the same bound.
        assert len(set(table.column("bound S"))) == 1

    def test_fuzz_shards_end_as_their_space_predicts(self, tables):
        table = tables["FUZZ"]
        assert all(table.column("ok"))
        # The quick grid carries both polarities: valid shards find
        # nothing, the known-bad shard always finds a counterexample.
        by_strategy = dict(
            zip(table.column("strategy"), table.column("found"))
        )
        assert by_strategy["valid"] is False
        assert by_strategy["known-bad"] is True

    def test_a3_send_offset_matters(self, tables):
        table = tables["A3"]
        with_offset, without_offset = table.rows
        assert with_offset[3] == 0       # no honest ⊥ with the offset
        assert without_offset[3] > 0     # rejections without it
        assert with_offset[5]
