"""Tests for the protocol ablation engine.

The guarantees under test:

* the component catalog and the build facade's toggle registry are the
  same set, and unknown names fail loudly with did-you-mean hints at
  both the resolver and CLI layers;
* plan expansion is a pure function of the spec — stable row order,
  stable content-addressed case keys, baseline rows indistinguishable
  (hash-wise) from the same scenarios elsewhere in the repo;
* execution is worker-count independent: the serial and process-pool
  matrices aggregate to byte-identical importance payloads (the
  committed ``results/ablation.json`` contract);
* the headline semantics hold on a real cell: ablating ``tcb-filter``
  flips the ``progress`` monitor from PASS to FAIL and the run
  deadlocks, while its baseline passes everything;
* campaign conformance skips ablated rows (their bound violations are
  the point, not a regression).
"""

import json
import os

import pytest

from repro.ablation import (
    ABLATION_CAMPAIGN_NAME,
    ABLATION_SEED,
    COMPONENT_INDEX,
    COMPONENTS,
    AblationSpec,
    ablation_campaign_spec,
    ablation_payload_bytes,
    ablation_report,
    monitor_flips,
    planned_runs,
    planned_trials,
    render_ablation_table,
)
from repro.build import (
    ABLATABLE_COMPONENTS,
    UnknownBackendError,
    UnknownComponentError,
    resolve_ablation,
    resolve_backend,
)
from repro.campaigns import ExecutionPolicy, execute_campaign
from repro.checks.campaign import ablated_trials, campaign_scenarios
from repro.cli import main


# A single-component spec keeps execution tests at two quick trials
# (n = 6, 10 pulses) instead of the full twelve-row matrix.
TCB_ONLY = AblationSpec(components=("tcb-filter",))


class TestCatalog:
    def test_catalog_matches_build_registry(self):
        assert tuple(c.name for c in COMPONENTS) == ABLATABLE_COMPONENTS

    def test_catalog_is_sorted_and_indexed(self):
        names = [c.name for c in COMPONENTS]
        assert names == sorted(names)
        assert set(COMPONENT_INDEX) == set(names)

    def test_challenge_cases_never_carry_ablate(self):
        for component in COMPONENTS:
            assert "ablate" not in component.challenge
            assert "ablate" not in component.baseline_case()
            assert component.ablated_case()["ablate"] == [
                component.name
            ]


class TestResolveAblation:
    def test_canonicalizes_to_sorted_dedup_tuple(self):
        assert resolve_ablation(
            ["tcb-filter", "apa", "apa"]
        ) == ("apa", "tcb-filter")

    def test_none_and_empty_resolve_to_nothing(self):
        assert resolve_ablation(None) == ()
        assert resolve_ablation(()) == ()

    def test_unknown_component_gets_did_you_mean(self):
        with pytest.raises(
            UnknownComponentError, match="did you mean 'signatures'"
        ):
            resolve_ablation(["signatuers"])

    def test_backend_resolver_redirects_toggle_names(self):
        with pytest.raises(
            UnknownBackendError, match="ablation component"
        ):
            resolve_backend("apa")


class TestPlan:
    def test_default_spec_is_baseline_plus_one_off(self):
        runs = planned_runs(AblationSpec())
        assert len(runs) == 2 * len(ABLATABLE_COMPONENTS)
        for baseline, ablated in zip(runs[::2], runs[1::2]):
            assert baseline.component == ablated.component
            assert baseline.variant == "baseline"
            assert ablated.variant == f"{ablated.component}=off"
            assert "ablate" not in baseline.case

    def test_pairwise_extends_with_both_members_challenges(self):
        spec = AblationSpec(
            components=("apa", "tcb-filter"), pairwise=True
        )
        runs = planned_runs(spec)
        # 2 components x (baseline + one-off) + 1 pair x 2 owners.
        assert len(runs) == 6
        pair_rows = [run for run in runs if len(run.ablate) == 2]
        assert [run.component for run in pair_rows] == [
            "apa",
            "tcb-filter",
        ]
        for run in pair_rows:
            assert run.ablate == ("apa", "tcb-filter")
            assert run.case["ablate"] == ["apa", "tcb-filter"]

    def test_case_keys_are_stable_across_expansions(self):
        first = [
            plan.case_key
            for _, plan in planned_trials(AblationSpec(), "quick")
        ]
        second = [
            plan.case_key
            for _, plan in planned_trials(AblationSpec(), "quick")
        ]
        assert first == second
        assert len(set(first)) == len(first)

    def test_baseline_rows_hash_like_plain_scenarios(self):
        # The baseline case dicts carry no ablate key, so their content
        # hash is indistinguishable from the same scenario in any other
        # campaign — cache hits across campaigns stay possible.
        for run, plan in planned_trials(AblationSpec(), "quick"):
            if not run.ablate:
                assert "ablate" not in plan.case

    def test_campaign_spec_identity(self):
        spec = ablation_campaign_spec(AblationSpec())
        assert spec.name == ABLATION_CAMPAIGN_NAME
        assert spec.seed == ABLATION_SEED
        assert set(spec.measurements) == {"quick", "full"}


class TestMonitorFlips:
    def test_pass_to_fail_flips(self):
        baseline = {"monitors": {"skew": True, "progress": True}}
        ablated = {"monitors": {"skew": False, "progress": True}}
        assert monitor_flips(baseline, ablated) == ["skew"]

    def test_fail_at_baseline_never_counts(self):
        baseline = {"monitors": {"skew": False}}
        ablated = {"monitors": {"skew": False}}
        assert monitor_flips(baseline, ablated) == []

    def test_errored_ablated_run_fails_missing_monitors(self):
        baseline = {"monitors": {"skew": True, "progress": True}}
        ablated = {"monitors": {}, "error": "boom"}
        assert monitor_flips(baseline, ablated) == [
            "progress",
            "skew",
        ]


class TestExecution:
    def _run(self, workers):
        spec = ablation_campaign_spec(TCB_ONLY)
        policy = ExecutionPolicy(workers=workers)
        return execute_campaign(spec, scale="quick", policy=policy)

    def test_tcb_filter_flips_progress_and_deadlocks(self):
        payload = ablation_report(TCB_ONLY, self._run(1))
        (entry,) = payload["components"]
        assert entry["component"] == "tcb-filter"
        assert entry["baseline"]["live"]
        assert all(entry["baseline"]["monitors"].values())
        assert "progress" in entry["monitor_flips"]
        assert entry["important"]
        assert not entry["ablated"]["live"]
        assert entry["ablated"]["max_skew"] is None

    def test_payload_is_worker_count_independent(self):
        serial = ablation_payload_bytes(
            ablation_report(TCB_ONLY, self._run(1))
        )
        pooled = ablation_payload_bytes(
            ablation_report(TCB_ONLY, self._run(2))
        )
        assert serial == pooled
        # And byte-stable: the artifact contract is exact equality.
        assert serial.endswith(b"\n")
        json.loads(serial)

    def test_render_table_covers_every_component(self):
        payload = ablation_report(TCB_ONLY, self._run(1))
        table = render_ablation_table(payload)
        rendered = str(table)
        assert "tcb-filter" in rendered
        assert "progress" in rendered


class TestConformanceIntegration:
    def test_ablated_rows_are_skipped_and_counted(self):
        spec = ablation_campaign_spec(AblationSpec())
        scenarios = campaign_scenarios(spec, "quick")
        # Only baseline rows contribute scenarios to conformance.
        assert scenarios
        assert ablated_trials(spec, "quick") == len(
            ABLATABLE_COMPONENTS
        )


class TestCommittedArtifact:
    ARTIFACT = os.path.join(
        os.path.dirname(__file__), "..", "results", "ablation.json"
    )

    def test_committed_payload_shape_and_headline(self):
        with open(self.ARTIFACT, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["campaign"] == ABLATION_CAMPAIGN_NAME
        assert payload["seed"] == ABLATION_SEED
        names = [
            entry["component"] for entry in payload["components"]
        ]
        assert names == list(ABLATABLE_COMPONENTS)
        # The acceptance floor is >= 3 components flipping; the
        # committed artifact clears it with every component.
        assert payload["summary"]["flipping"] >= 3
        for entry in payload["components"]:
            assert entry["baseline"]["error"] is None
            assert all(entry["baseline"]["monitors"].values())


class TestCli:
    def test_plan_lists_rows_without_executing(self, capsys):
        assert main(["ablate", "plan"]) == 0
        out = capsys.readouterr().out
        assert "tcb-filter/baseline" in out
        assert "tcb-filter/tcb-filter=off" in out
        assert "spec key" in out

    def test_unknown_component_exits_with_hint(self, capsys):
        with pytest.raises(
            SystemExit, match="did you mean 'signatures'"
        ):
            main(["ablate", "plan", "--component", "signatuers"])

    def test_run_writes_payload_and_prints_table(
        self, tmp_path, capsys
    ):
        out_path = os.path.join(tmp_path, "ablation.json")
        assert (
            main(
                [
                    "ablate",
                    "run",
                    "--component",
                    "tcb-filter",
                    "--out",
                    out_path,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "tcb-filter" in out
        with open(out_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["components"][0]["monitor_flips"]

    def test_report_renders_from_artifact_only(
        self, tmp_path, capsys
    ):
        out_path = os.path.join(tmp_path, "ablation.json")
        main(
            [
                "ablate",
                "run",
                "--component",
                "tcb-filter",
                "--out",
                out_path,
            ]
        )
        capsys.readouterr()
        assert main(["ablate", "report", "--path", out_path]) == 0
        out = capsys.readouterr().out
        assert "tcb-filter" in out

    def test_report_missing_artifact_hints_at_run(self, tmp_path):
        missing = os.path.join(tmp_path, "nope.json")
        with pytest.raises(SystemExit, match="repro ablate run"):
            main(["ablate", "report", "--path", missing])

    def test_scenarios_show_renders_churn_schedule(self, capsys):
        assert (
            main(["scenarios", "show", "crash-recover-wave"]) == 0
        )
        out = capsys.readouterr().out
        assert "schedule" in out
        assert "node" in out
