"""Focused tests for the CPS attack library and failure injection."""

import pytest

from repro.core.attacks import (
    CpsEquivocatingSubsetAttack,
    CpsMimicDealerAttack,
    CpsRushingEchoAttack,
    FastToFaultyDelayPolicy,
    cps_attack_catalog,
)
from repro.core.cps import assemble_cps_simulation
from repro.core.messages import TcbMessage, tcb_tag
from repro.core.params import derive_parameters
from repro.sim.adversary import HonestUntilCrash, adversary_catalog
from repro.sim.network import NetworkConfig
from repro.sync.crusader import BOT


@pytest.fixture(scope="module")
def params():
    return derive_parameters(1.0005, 1.0, 0.02, 6)


def faulty_of(params):
    return list(range(params.n - params.f, params.n))


class TestMessages:
    def test_tcb_message_validity(self):
        from repro.crypto.pki import PublicKeyInfrastructure

        pki = PublicKeyInfrastructure(3)
        good = TcbMessage(4, 1, pki.key_pair(1).sign(tcb_tag(4)))
        assert good.is_valid()
        wrong_round = TcbMessage(5, 1, pki.key_pair(1).sign(tcb_tag(4)))
        assert not wrong_round.is_valid()
        wrong_dealer = TcbMessage(4, 2, pki.key_pair(1).sign(tcb_tag(4)))
        assert not wrong_dealer.is_valid()

    def test_tcb_tag_distinguishes_rounds(self):
        assert tcb_tag(1) != tcb_tag(2)


class TestCatalogs:
    def test_cps_attack_catalog(self, params):
        catalog = cps_attack_catalog(params)
        assert set(catalog) == {
            "silent",
            "mimic-split",
            "equivocating-subset",
        }
        for behavior in catalog.values():
            assert behavior.describe()

    def test_generic_catalog(self):
        catalog = adversary_catalog()
        assert "silent" in catalog and "replay" in catalog


class TestMimicAttack:
    def test_faulty_dealers_split_groups(self, params):
        group_a = [0, 2]
        simulation = assemble_cps_simulation(
            params,
            faulty=faulty_of(params),
            behavior=CpsMimicDealerAttack(params, group_a),
            seed=1,
        )
        result = simulation.run(max_pulses=6)
        # Nodes in group A receive faulty estimates systematically lower
        # than nodes outside it (faster delivery => earlier arrival).
        diffs = []
        honest_pulses = result.honest_pulses()
        for r in range(2, 5):
            for x in faulty_of(params):
                in_a = []
                out_a = []
                for v in result.honest:
                    summary = simulation.protocol(v).summaries[r]
                    estimate = summary.estimates.get(x)
                    if estimate is BOT or estimate is None:
                        continue
                    adjusted = estimate + honest_pulses[v][r]
                    (in_a if v in group_a else out_a).append(adjusted)
                if in_a and out_a:
                    diffs.append(
                        max(in_a) - min(out_a)
                    )
        assert diffs
        assert all(diff < 0 for diff in diffs)

    def test_spread_fraction_validated_by_model(self, params):
        # A spread fraction of 1.0 still produces admissible delays.
        attack = CpsMimicDealerAttack(params, [0], spread_fraction=1.0)
        simulation = assemble_cps_simulation(
            params, faulty=faulty_of(params), behavior=attack, seed=1
        )
        simulation.run(max_pulses=4)  # must not raise ModelViolation


class TestEquivocatingSubset:
    def test_half_get_value_half_get_bot(self, params):
        simulation = assemble_cps_simulation(
            params,
            faulty=faulty_of(params),
            behavior=CpsEquivocatingSubsetAttack(params),
            seed=1,
        )
        result = simulation.run(max_pulses=5)
        honest = sorted(result.honest)
        subset = honest[: len(honest) // 2]
        excluded = honest[len(honest) // 2 :]
        for r in range(2, 4):
            for x in faulty_of(params):
                for v in subset:
                    estimate = simulation.protocol(v).summaries[r].estimates[x]
                    assert estimate is not BOT
                for v in excluded:
                    estimate = simulation.protocol(v).summaries[r].estimates[x]
                    assert estimate is BOT


class TestRushingEcho:
    def test_targets_only_selected_dealers(self, params):
        attack = CpsRushingEchoAttack(target_dealers={0})
        simulation = assemble_cps_simulation(
            params,
            faulty=faulty_of(params),
            behavior=attack,
            delay_policy=FastToFaultyDelayPolicy(),
            u_tilde=8 * params.u,
            clock_style="extreme",
        )
        result = simulation.run(max_pulses=6)
        rejected_dealers = set()
        for record in result.trace.protocol_events("cps-round"):
            for w, estimate in record.details.estimates.items():
                if estimate is BOT and w in result.honest:
                    rejected_dealers.add(w)
        assert rejected_dealers <= {0}

    def test_fast_to_faulty_policy_bounds(self, params):
        policy = FastToFaultyDelayPolicy()
        config = NetworkConfig(6, 1.0, 0.02, u_tilde=0.1)
        assert policy.delay(config, 0, 1, 0.0, None, True) == 1.0
        assert policy.delay(config, 0, 5, 0.0, None, False) == pytest.approx(
            0.9
        )


class TestCrashFaults:
    def test_crash_mid_run_keeps_guarantees(self, params):
        """Crash faults are a special case of Byzantine: guarantees hold."""
        from repro.analysis.metrics import check_liveness, max_skew
        from repro.core.cps import CpsNode

        crash_times = {4: 5.0, 5: 12.0}
        behavior = HonestUntilCrash(
            lambda v: CpsNode(params), crash_times=crash_times
        )
        simulation = assemble_cps_simulation(
            params, faulty=[4, 5], behavior=behavior, seed=3
        )
        result = simulation.run(max_pulses=10)
        honest = result.honest_pulses()
        assert check_liveness(honest, 10)
        assert max_skew(honest) <= params.S + 1e-9
