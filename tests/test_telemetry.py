"""Tests for the telemetry subsystem: registry, sidecars, progress.

The load-bearing guarantees:

* **Zero perturbation** — instrumented and bare runs of the same
  simulation produce identical pulse streams and event counts; PULSES
  and FULL trace levels produce identical telemetry snapshots.
* **Sidecar determinism** — campaign ``.telemetry.json`` payloads are
  byte-identical across worker counts.
* **Bounded traces** — ``Trace(max_records=N)`` caps memory while
  leaving simulated behaviour untouched.
"""

import io
import json
import os

import pytest

from repro import scenarios
from repro.campaigns import (
    ExecutionPolicy,
    campaign_definition,
    execute_campaign,
)
from repro.campaigns.store import dump_json_summary
from repro.core.cps import assemble_cps_simulation
from repro.core.params import derive_parameters
from repro.crypto.signatures import clear_verify_cache
from repro.sim.trace import Trace, TraceLevel, TruncationRecord
from repro.telemetry import (
    DELAY_BUCKETS,
    DISPATCH_NAMES,
    METRIC_CATALOG,
    Histogram,
    Telemetry,
    active_telemetry,
    available_metrics,
    merge_snapshots,
    telemetry_session,
)
from repro.telemetry.campaign import (
    InstrumentationPlan,
    aggregate_payloads,
    campaign_telemetry,
    diff_rows,
    render_campaign_telemetry,
    render_diff,
)
from repro.telemetry.profiler import (
    aggregate_hotspots,
    profile_rows,
    render_hotspots,
)
from repro.telemetry.progress import ProgressReporter

PULSES = 8


def build_small_cps(trace="pulses", n=5, seed=7):
    params = derive_parameters(1.001, 1.0, 0.02, n)
    faulty = list(range(n - params.f, n))
    return assemble_cps_simulation(
        params,
        faulty=faulty,
        behavior=scenarios.create("adversary", "mimic-split", params),
        seed=seed,
        trace=trace,
    )


def run_instrumented_cps(trace="pulses", **kwargs):
    clear_verify_cache()
    telemetry = Telemetry(label="test")
    with telemetry_session(telemetry):
        result = build_small_cps(trace=trace, **kwargs).run(
            max_pulses=PULSES
        )
    return telemetry, result


class TestZeroPerturbation:
    def test_pulses_identical_with_and_without_telemetry(self):
        bare = build_small_cps().run(max_pulses=PULSES)
        _telemetry, instrumented = run_instrumented_cps()
        assert bare.pulses == instrumented.pulses
        assert bare.events_processed == instrumented.events_processed

    def test_counters_are_internally_consistent(self):
        telemetry, result = run_instrumented_cps()
        snapshot = telemetry.as_dict()
        counters = snapshot["counters"]
        dispatched = sum(
            counters.get(name, 0) for name in DISPATCH_NAMES
        )
        assert dispatched == result.events_processed
        delivered = (
            counters["messages.delivered.honest"]
            + counters["messages.delivered.adversary"]
            + counters["messages.dropped.inactive"]
        )
        assert delivered == counters["events.dispatched.delivery"]
        assert counters["pulses.recorded"] == sum(
            len(times) for times in result.pulses.values()
        )
        assert counters["tcb.echoes"] > 0
        assert counters["crypto.verify.misses"] > 0
        assert snapshot["gauges"]["events.processed"] == (
            result.events_processed
        )
        assert snapshot["spans"] == {"sim.run": 1}

    def test_trace_level_does_not_change_telemetry(self):
        """The PULSES fast path and FULL tracing observe the same
        execution, so their snapshots must be identical."""
        pulses_telemetry, pulses_result = run_instrumented_cps("pulses")
        full_telemetry, full_result = run_instrumented_cps("full")
        assert pulses_result.pulses == full_result.pulses
        assert pulses_telemetry.as_dict() == full_telemetry.as_dict()

    def test_span_timings_live_only_on_the_handle(self):
        telemetry, _result = run_instrumented_cps()
        timings = telemetry.span_timings()
        assert timings["sim.run"]["count"] == 1
        assert timings["sim.run"]["total_s"] > 0
        assert "total_s" not in json.dumps(telemetry.as_dict())

    def test_delay_histogram_covers_every_send(self):
        telemetry, _result = run_instrumented_cps()
        snapshot = telemetry.as_dict()
        histogram = snapshot["histograms"]["messages.delay"]
        sent = (
            snapshot["counters"]["messages.sent.honest"]
            + snapshot["counters"]["messages.sent.faulty"]
        )
        assert histogram["count"] == sent
        assert sum(histogram["counts"]) == sent

    def test_meta_records_run_shape(self):
        telemetry, _result = run_instrumented_cps()
        meta = telemetry.as_dict()["meta"]
        params = derive_parameters(1.001, 1.0, 0.02, 5)
        assert meta["n"] == 5
        assert meta["f"] == params.f
        assert len(meta["delay_policies"]) == 1


class TestAmbientContext:
    def test_session_restores_previous_handle(self):
        outer = Telemetry(label="outer")
        inner = Telemetry(label="inner")
        with telemetry_session(outer):
            assert active_telemetry() is outer
            with telemetry_session(inner):
                assert active_telemetry() is inner
            assert active_telemetry() is outer
        assert active_telemetry() is None

    def test_simulation_adopts_ambient_handle(self):
        telemetry = Telemetry()
        with telemetry_session(telemetry):
            simulation = build_small_cps()
        assert simulation.telemetry is telemetry
        assert build_small_cps().telemetry is None


class TestHistogram:
    def test_boundary_value_lands_in_closed_bucket(self):
        """The maximum delay d (= 1.0 in registry scenarios) must land
        in the <=1.0 bucket, not the (1.0, 1.25] one."""
        histogram = Histogram(DELAY_BUCKETS)
        histogram.observe(1.0)
        assert histogram.counts[DELAY_BUCKETS.index(1.0)] == 1

    def test_overflow_bucket(self):
        histogram = Histogram((1.0, 2.0))
        histogram.observe(5.0)
        assert histogram.counts == [0, 0, 1]
        assert histogram.count == 1
        assert histogram.total == 5.0


class TestMergeAndDiff:
    def test_merge_sums_counters_and_maxes_gauges(self):
        a = {
            "counters": {"x": 1},
            "gauges": {"g": 3.0},
            "spans": {"s": 1},
            "histograms": {
                "h": {
                    "boundaries": [1.0],
                    "counts": [1, 0],
                    "count": 1,
                    "total": 0.5,
                }
            },
        }
        b = {
            "counters": {"x": 2, "y": 5},
            "gauges": {"g": 2.0},
            "spans": {"s": 4},
            "histograms": {
                "h": {
                    "boundaries": [1.0],
                    "counts": [0, 2],
                    "count": 2,
                    "total": 4.0,
                }
            },
        }
        merged = merge_snapshots([a, b])
        assert merged["counters"] == {"x": 3, "y": 5}
        assert merged["gauges"] == {"g": 3.0}
        assert merged["spans"] == {"s": 5}
        assert merged["histograms"]["h"]["counts"] == [1, 2]
        assert merged["histograms"]["h"]["total"] == 4.5

    def test_diff_rows_cover_both_sides(self):
        left = {"aggregate": {"counters": {"x": 1}, "gauges": {}}}
        right = {"aggregate": {"counters": {"y": 2}, "gauges": {}}}
        rows = diff_rows(left, right)
        by_name = {row["metric"]: row for row in rows}
        assert by_name["x"]["delta"] == -1
        assert by_name["y"]["delta"] == 2
        assert "x" in render_diff(rows)
        assert render_diff(rows, changed_only=True) != "no matching metrics"

    def test_aggregate_payloads_merges_stores(self):
        payload = {
            "campaign": "E4",
            "scale": "quick",
            "instrumented": 2,
            "aggregate": {"counters": {"x": 1}},
        }
        merged = aggregate_payloads([payload, payload])
        assert merged["sidecars"] == 2
        assert merged["instrumented"] == 4
        assert merged["campaigns"] == ["E4[quick]"]
        assert merged["aggregate"]["counters"] == {"x": 2}


class TestMetricCatalog:
    def test_catalog_names_are_available(self):
        names = available_metrics()
        assert names == sorted(names)
        for name in METRIC_CATALOG:
            assert name in names

    def test_payload_extends_catalog_with_dynamic_names(self):
        payload = {
            "aggregate": {"counters": {"annotations.cps-round": 3}}
        }
        assert "annotations.cps-round" in available_metrics(payload)
        assert "annotations.cps-round" not in METRIC_CATALOG


class TestCampaignSidecars:
    def _run(self, workers):
        policy = ExecutionPolicy(workers=workers, chunk_size=1)
        definition = campaign_definition("E4")
        return execute_campaign(
            definition.spec(),
            scale="quick",
            policy=policy,
            instrumentation=InstrumentationPlan(telemetry=True),
        )

    def test_sidecar_identical_across_worker_counts(self, tmp_path):
        """The acceptance criterion: workers=1 and workers=2 produce
        record-identical, byte-identical telemetry sidecars."""
        serial = campaign_telemetry(self._run(workers=1))
        pooled = campaign_telemetry(self._run(workers=2))
        paths = []
        for name, payload in (("serial", serial), ("pooled", pooled)):
            path = os.path.join(tmp_path, f"{name}.telemetry.json")
            dump_json_summary(path, payload)
            paths.append(path)
        with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
            assert a.read() == b.read()

    def test_payload_shape_and_rendering(self):
        run = self._run(workers=1)
        payload = campaign_telemetry(run)
        assert payload["campaign"] == "E4"
        assert payload["instrumented"] == payload["trials"]
        assert payload["failed"] == 0
        assert len(payload["records"]) == payload["trials"]
        for entry in payload["records"]:
            assert entry["telemetry"]["counters"]["pulses.recorded"] > 0
        text = render_campaign_telemetry(
            payload, metrics=["pulses.recorded"]
        )
        assert "pulses.recorded" in text
        assert "tcb.echoes" not in text

    def test_instrumentation_plan_activity(self):
        assert not InstrumentationPlan().active
        assert InstrumentationPlan(telemetry=True).active
        assert InstrumentationPlan(profile=True).active

    def test_profile_mode_attaches_hotspot_rows(self):
        definition = campaign_definition("E4")
        run = execute_campaign(
            definition.spec(),
            scale="quick",
            instrumentation=InstrumentationPlan(
                profile=True, profile_top=5
            ),
        )
        rows = aggregate_hotspots(run.records, top=5)
        assert rows
        assert len(rows) <= 5
        for row in rows:
            assert set(row) == {"function", "calls", "tottime", "cumtime"}
        assert "tottime" in render_hotspots(rows)


class TestTraceCap:
    def test_capped_full_trace_is_bounded_and_marked(self):
        cap = 50
        capped = Trace(level=TraceLevel.FULL, max_records=cap)
        result = build_small_cps(trace=capped).run(max_pulses=PULSES)
        assert result.trace is capped
        assert len(capped.records) == cap + 1
        assert isinstance(capped.records[-1], TruncationRecord)
        assert capped.truncated
        assert capped.dropped_records > 0
        uncapped = build_small_cps(trace="full").run(max_pulses=PULSES)
        assert capped.dropped_records == (
            len(uncapped.trace.records) - cap
        )
        assert capped.records[:cap] == uncapped.trace.records[:cap]

    def test_cap_does_not_change_pulses(self):
        capped = Trace(level=TraceLevel.FULL, max_records=10)
        bounded = build_small_cps(trace=capped).run(max_pulses=PULSES)
        plain = build_small_cps(trace="full").run(max_pulses=PULSES)
        assert bounded.pulses == plain.pulses

    def test_roomy_cap_never_truncates(self):
        roomy = Trace(level=TraceLevel.FULL, max_records=10_000_000)
        result = build_small_cps(trace=roomy).run(max_pulses=PULSES)
        assert not roomy.truncated
        assert roomy.dropped_records == 0
        plain = build_small_cps(trace="full").run(max_pulses=PULSES)
        assert result.trace.records == plain.trace.records

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError, match="max_records"):
            Trace(max_records=0)

    def test_from_spec_passes_instances_through(self):
        trace = Trace(level="pulses", max_records=3)
        assert Trace.from_spec(trace) is trace
        assert Trace.from_spec("full").level is TraceLevel.FULL
        assert Trace.from_spec(False).level is TraceLevel.NONE


class _Record:
    def __init__(self, events, duration, ok=True, cached=False):
        self.metrics = {"events": events}
        self.duration = duration
        self.ok = ok
        self.cached = cached


class TestProgressReporter:
    def _reporter(self, interval=1.0):
        stream = io.StringIO()
        clock_value = [0.0]

        def clock():
            return clock_value[0]

        reporter = ProgressReporter(
            "E4/quick", stream=stream, interval=interval, clock=clock
        )
        return reporter, stream, clock_value

    def test_emits_throttled_heartbeats(self):
        reporter, stream, clock_value = self._reporter(interval=10.0)
        clock_value[0] = 0.5
        reporter.update(1, 4, _Record(1000, 0.5))
        clock_value[0] = 1.0  # within the interval: suppressed
        reporter.update(2, 4, _Record(1000, 0.5))
        clock_value[0] = 20.0
        reporter.update(3, 4, _Record(1000, 0.5))
        assert reporter.lines_emitted == 2
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("[E4/quick] 1/4 trials (25%)")
        assert "ev/s" in lines[0]
        assert "ETA" in lines[0]

    def test_final_update_always_emits(self):
        reporter, stream, clock_value = self._reporter(interval=100.0)
        reporter.update(1, 2, _Record(10, 0.1))
        clock_value[0] = 0.5
        reporter.update(2, 2, _Record(10, 0.1))
        assert "2/2 trials (100%)" in stream.getvalue()

    def test_rolling_rate_ignores_cached_and_failed(self):
        reporter, _stream, _clock = self._reporter()
        reporter.update(1, 3, _Record(500, 1.0, cached=True))
        reporter.update(2, 3, _Record(500, 1.0, ok=False))
        assert reporter.rolling_events_per_sec() is None
        reporter.update(3, 3, _Record(500, 2.0))
        assert reporter.rolling_events_per_sec() == pytest.approx(250.0)

    def test_eta_extrapolates_observed_rate(self):
        reporter, _stream, clock_value = self._reporter()
        reporter.update(2, 6, _Record(10, 0.1))
        clock_value[0] = 4.0
        assert reporter.eta_seconds(4.0) == pytest.approx(8.0)
        reporter.update(6, 6, _Record(10, 0.1))
        assert reporter.eta_seconds(4.0) is None

    def test_finish_prints_closing_line(self):
        reporter, stream, clock_value = self._reporter()
        reporter.update(1, 1, _Record(10, 0.1))
        clock_value[0] = 2.5
        reporter.finish()
        assert "done: 1/1 trials in 2.5s" in stream.getvalue()


class TestProfiler:
    def test_profile_rows_reduce_a_real_profile(self):
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        sum(range(1000))
        profiler.disable()
        rows = profile_rows(profiler, top=3)
        assert 0 < len(rows) <= 3
        for row in rows:
            assert row["tottime"] >= 0
            assert row["calls"] >= 1
        assert rows == sorted(
            rows, key=lambda row: (-row["tottime"], row["function"])
        )

    def test_render_handles_empty_input(self):
        assert "no profile data" in render_hotspots([])
