"""Tests for the churn subsystem: schedules, injection, resync,
stabilization metrics/monitor, and churn determinism."""

import pytest

from repro.analysis.metrics import (
    alignment_envelope,
    nearest_pulse_gap,
    stabilization_report,
)
from repro.campaigns import (
    ExecutionPolicy,
    campaign_definition,
    execute_campaign,
)
from repro.build import build_simulation
from repro.checks import (
    CHURN_MONITORS,
    MONITOR_CATALOG,
    applicable_monitors,
    check_scenario,
    run_churn_conformance,
    run_churn_fixture,
    scenario_mode,
)
from repro.core.cps import assemble_cps_simulation
from repro.core.params import derive_parameters
from repro.dynamics import (
    ChurnController,
    FaultEvent,
    FaultSchedule,
    MalformedScheduleError,
)
from repro.scenarios import REGISTRY
from repro.sim.errors import SimulationError

PROFILES = (
    "single-crash",
    "rolling-crashes",
    "crash-recover-wave",
    "late-join-cohort",
    "flapping-node",
    "adversary-handoff",
)


def _params(n=6, u=0.02):
    return derive_parameters(1.001, 1.0, u, n)


def _crash_recover_schedule():
    return FaultSchedule(
        events=(
            FaultEvent("crash", 0, at_pulse=3),
            FaultEvent("recover", 0, at_pulse=6),
        ),
        corruptions=1,
    )


def _run(schedule, pulses=14, seed=0, n=6, trace="pulses"):
    params = _params(n=n)
    controller = ChurnController(schedule, params)
    simulation = assemble_cps_simulation(
        params,
        faulty=schedule.initially_corrupted(n),
        seed=seed,
        clock_style="extreme",
        trace=trace,
        dynamics=controller,
    )
    result = simulation.run(max_pulses=pulses)
    return simulation, controller, result, params


class TestFaultEvent:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(MalformedScheduleError, match="exactly one"):
            FaultEvent("crash", 0)
        with pytest.raises(MalformedScheduleError, match="exactly one"):
            FaultEvent("crash", 0, at=1.0, at_pulse=2)

    def test_rejects_unknown_kind(self):
        with pytest.raises(MalformedScheduleError, match="unknown"):
            FaultEvent("explode", 0, at=1.0)

    def test_rejects_bad_times(self):
        with pytest.raises(MalformedScheduleError, match="negative"):
            FaultEvent("crash", 0, at=-1.0)
        with pytest.raises(MalformedScheduleError, match=">= 1"):
            FaultEvent("crash", 0, at_pulse=0)


class TestScheduleValidation:
    def test_valid_schedule_passes(self):
        _crash_recover_schedule().validate(6, 2)

    def test_node_out_of_range(self):
        schedule = FaultSchedule(
            events=(FaultEvent("crash", 9, at_pulse=2),)
        )
        with pytest.raises(MalformedScheduleError, match="outside"):
            schedule.validate(6, 2)

    def test_budget_enforced(self):
        # Two crashes plus one corruption exceed f=2.
        schedule = FaultSchedule(
            events=(
                FaultEvent("crash", 0, at_pulse=2),
                FaultEvent("crash", 1, at_pulse=3),
            ),
            corruptions=1,
        )
        with pytest.raises(MalformedScheduleError, match="budget"):
            schedule.validate(6, 2)

    def test_recover_requires_prior_crash(self):
        schedule = FaultSchedule(
            events=(FaultEvent("recover", 0, at_pulse=2),)
        )
        with pytest.raises(MalformedScheduleError, match="not crashed"):
            schedule.validate(6, 2)

    def test_needs_a_stable_node(self):
        # One-at-a-time rolling crashes that touch *every* node stay
        # within the budget but leave no stable reference.
        events = []
        for v in range(4):
            events.append(FaultEvent("crash", v, at_pulse=2 + 4 * v))
            events.append(FaultEvent("recover", v, at_pulse=4 + 4 * v))
        schedule = FaultSchedule(events=tuple(events), corruptions=0)
        with pytest.raises(MalformedScheduleError, match="stable"):
            schedule.validate(4, 1)

    def test_join_of_corrupted_node_rejected(self):
        # Node 5 is initially corrupted (top id); it cannot also be a
        # dormant late joiner.
        schedule = FaultSchedule(
            events=(FaultEvent("join", 5, at_pulse=2),),
            corruptions=1,
        )
        with pytest.raises(
            MalformedScheduleError, match="both late-join and start"
        ):
            schedule.validate(6, 2)

    def test_declared_order_must_match_trigger_order(self):
        # Declared crash-then-recover, but the recover triggers first:
        # the runtime would apply recover before crash.
        schedule = FaultSchedule(
            events=(
                FaultEvent("crash", 0, at_pulse=5),
                FaultEvent("recover", 0, at_pulse=3),
            ),
            corruptions=0,
        )
        with pytest.raises(
            MalformedScheduleError, match="contradicts trigger order"
        ):
            schedule.validate(6, 2)
        by_time = FaultSchedule(
            events=(
                FaultEvent("crash", 0, at=5.0),
                FaultEvent("recover", 0, at=3.0),
            ),
            corruptions=0,
        )
        with pytest.raises(
            MalformedScheduleError, match="contradicts trigger order"
        ):
            by_time.validate(6, 2)

    def test_dormant_nodes_counted(self):
        schedule = FaultSchedule(
            events=(FaultEvent("join", 0, at_pulse=2),),
            corruptions=2,
        )
        with pytest.raises(MalformedScheduleError, match="budget|f="):
            schedule.validate(6, 2)

    def test_derived_sets(self):
        schedule = _crash_recover_schedule()
        assert schedule.initially_dormant() == []
        assert schedule.initially_corrupted(6) == [5]
        assert schedule.stable_nodes(6) == [1, 2, 3, 4]
        assert schedule.finally_active(6) == [0, 1, 2, 3, 4]
        assert [e.kind for e in schedule.activations()] == ["recover"]


class TestInjection:
    def test_crash_stops_pulsing(self):
        schedule = FaultSchedule(
            events=(FaultEvent("crash", 0, at_pulse=3),),
            corruptions=1,
        )
        _sim, controller, result, _params = _run(schedule, pulses=8)
        assert [kind for _t, kind, _v in controller.applied] == ["crash"]
        # The trigger is global pulse progress: the crashed (slow) node
        # holds 2-3 pulses when the fastest node reaches index 3.
        assert 2 <= len(result.pulses[0]) <= 3
        crash_time = controller.applied[0][0]
        assert all(t <= crash_time for t in result.pulses[0])
        for v in (1, 2, 3, 4):
            assert len(result.pulses[v]) >= 8

    def test_absolute_time_trigger(self):
        schedule = FaultSchedule(
            events=(FaultEvent("crash", 0, at=5.0),),
            corruptions=1,
        )
        _sim, controller, result, _params = _run(schedule, pulses=8)
        (crash_time, kind, node) = controller.applied[0]
        assert (kind, node) == ("crash", 0)
        assert crash_time == pytest.approx(5.0)
        assert all(t <= 5.0 for t in result.pulses[0])

    def test_recovered_node_reaches_quota(self):
        _sim, controller, result, _params = _run(
            _crash_recover_schedule(), pulses=14
        )
        kinds = [kind for _t, kind, _v in controller.applied]
        assert kinds == ["crash", "recover"]
        # The pulse quota counts the recovered node again: it must have
        # caught up to the full budget by the end of the run.
        assert len(result.pulses[0]) >= 14

    def test_recovered_node_resynchronizes(self):
        _sim, controller, result, params = _run(
            _crash_recover_schedule(), pulses=14
        )
        recover_time = controller.applied[-1][0]
        report = stabilization_report(
            result.pulses, 0, recover_time, [1, 2, 3, 4], params.S
        )
        assert report.resynced
        assert report.pulses_to_resync <= 6
        assert report.envelope <= params.S

    def test_late_join_starts_dormant(self):
        schedule = FaultSchedule(
            events=(FaultEvent("join", 0, at_pulse=3),),
            corruptions=1,
        )
        _sim, controller, result, params = _run(schedule, pulses=12)
        join_time = controller.applied[0][0]
        assert result.pulses[0], "joiner never pulsed"
        assert min(result.pulses[0]) > join_time
        report = stabilization_report(
            result.pulses, 0, join_time, [1, 2, 3, 4], params.S
        )
        assert report.resynced

    def test_fast_flapping_ignores_stale_listen_timers(self):
        # A node flapping faster than one listen window leaves the
        # first incarnation's listen deadline pending across the second
        # crash; the wrapper must ignore it (deadline nonce in the tag)
        # instead of handing off early with a truncated estimate set.
        schedule = FaultSchedule(
            events=(
                FaultEvent("crash", 0, at=5.0),
                FaultEvent("recover", 0, at=6.0),
                FaultEvent("crash", 0, at=7.0),
                FaultEvent("recover", 0, at=8.0),
            ),
            corruptions=1,
        )
        _sim, controller, result, params = _run(
            schedule, pulses=16, seed=11
        )
        final_recover = controller.applied[-1][0]
        report = stabilization_report(
            result.pulses, 0, final_recover, [1, 2, 3, 4], params.S
        )
        assert report.resynced, report
        assert report.envelope <= params.S

    def test_adversary_handoff_moves_the_corrupted_set(self):
        n = 6
        schedule = FaultSchedule(
            events=(
                FaultEvent("restore", 5, at_pulse=3),
                FaultEvent("corrupt", 0, at_pulse=3),
            ),
            corruptions=2,
        )
        sim, controller, result, params = _run(schedule, pulses=12)
        assert sim.faulty == {0, 4}
        assert 5 in sim.honest and 0 not in sim.honest
        assert len(result.pulses[5]) >= 12  # released node caught up
        handoff = controller.applied[0][0]
        assert all(t <= handoff for t in result.pulses[0])

    def test_mismatched_corruption_set_rejected(self):
        params = _params()
        schedule = _crash_recover_schedule()  # expects faulty == {5}
        with pytest.raises(MalformedScheduleError, match="corrupted"):
            assemble_cps_simulation(
                params,
                faulty=[4, 5],
                seed=0,
                clock_style="extreme",
                dynamics=ChurnController(schedule, params),
            )

    def test_runtime_budget_guard(self):
        # Corrupting beyond f at runtime is refused by the scheduler
        # even if a hand-rolled hook tries it.
        params = _params()
        simulation = assemble_cps_simulation(
            params, faulty=[4, 5], seed=0, clock_style="extreme"
        )
        with pytest.raises(SimulationError, match="budget"):
            simulation.corrupt_node(0)


class TestChurnBuilder:
    def test_unfired_activation_is_not_vacuous_success(self):
        # A recovery whose trigger lands beyond the measurement window
        # never fires; the row must NOT report resynced.
        from repro.campaigns.builders import cps_churn_trial
        from repro.campaigns.spec import MeasurementSpec

        case = {
            "n": 6,
            "theta": 1.001,
            "d": 1.0,
            "u": 0.02,
            "adversary": "silent",
            "delay": "maximum",
            "drift": "extreme",
            "churn": "crash-recover-wave",
            "churn_params": {"at_pulse": 40},
        }
        row = cps_churn_trial(
            case, MeasurementSpec(pulses=8, warmup=2), seed=0
        )
        assert row["activations"] == 2
        assert row["disruptions"] == 0
        assert row["resynced"] is False


class TestStabilizationMetrics:
    def test_nearest_pulse_gap(self):
        assert nearest_pulse_gap([1.0, 3.0], 2.9) == pytest.approx(0.1)
        assert nearest_pulse_gap([1.0, 3.0], 0.0) == pytest.approx(1.0)
        assert nearest_pulse_gap([], 1.0) == float("inf")

    def test_alignment_envelope_skips_truncated_references(self):
        pulses = {1: [1.0, 2.0], 2: [1.0, 2.0, 3.0]}
        # t=3.0 is beyond node 1's train (+bound), so only node 2 counts.
        assert alignment_envelope(
            pulses, [1, 2], 3.0, bound=0.5
        ) == pytest.approx(0.0)
        # No reference covers t=10 at all.
        assert alignment_envelope(pulses, [1, 2], 10.0, bound=0.5) is None

    def test_report_flags_never_resynced(self):
        pulses = {0: [5.0, 6.0, 7.0], 1: [5.4, 6.4, 7.4]}
        report = stabilization_report(pulses, 0, 4.0, [1], bound=0.1)
        assert not report.resynced

    def test_report_counts_pulses_to_resync(self):
        pulses = {
            0: [5.3, 6.1, 7.0],  # converges on its second pulse
            1: [5.0, 6.0, 7.0, 8.0],
        }
        report = stabilization_report(pulses, 0, 4.0, [1], bound=0.15)
        assert report.resynced
        assert report.pulses_to_resync == 2
        assert report.envelope == pytest.approx(0.1)

    def test_report_without_post_pulses(self):
        pulses = {0: [1.0], 1: [1.0, 2.0, 3.0]}
        report = stabilization_report(pulses, 0, 1.5, [1], bound=0.1)
        assert not report.resynced
        assert report.pulses_to_resync is None


class TestChurnRegistry:
    def test_profiles_registered(self):
        assert set(REGISTRY.keys("churn")) == set(PROFILES)

    def test_profiles_validate_against_reference_deployment(self):
        params = _params()
        for key in PROFILES:
            schedule = REGISTRY.create("churn", key, params)
            schedule.validate(params.n, params.f)

    def test_profiles_scale_with_n(self):
        params = _params(n=9)
        for key in PROFILES:
            schedule = REGISTRY.create("churn", key, params)
            schedule.validate(params.n, params.f)

    def test_factory_overrides_can_malform(self):
        params = _params()
        with pytest.raises(MalformedScheduleError):
            REGISTRY.create(
                "churn", "single-crash", params, node=99
            ).validate(params.n, params.f)

    def test_churn_mode_and_monitors(self):
        for key in PROFILES:
            assert scenario_mode("churn", key) == "churn"
            assert applicable_monitors("churn", key) == CHURN_MONITORS
        assert "stabilization" in MONITOR_CATALOG


class TestChurnConformance:
    def test_every_profile_passes_quick(self):
        for key in PROFILES:
            report = check_scenario("churn", key, scale="quick", seed=0)
            assert report.ok, (
                key,
                report.error,
                [v.as_dict() for v in report.verdicts],
            )
            assert report.mode == "churn"
            assert all(v.checked > 0 for v in report.verdicts)

    def test_fixture_fires(self):
        verdicts, _result = run_churn_fixture()
        violations = [
            violation
            for verdict in verdicts
            for violation in verdict.violations
        ]
        assert violations, "crash-without-recovery went undetected"
        messages = " ".join(v.message for v in violations)
        assert "never occurred" in messages
        assert "fell silent" in messages


class TestChurnDeterminism:
    """Identical outputs across trace levels and executor modes."""

    def test_trace_levels_agree(self):
        for key in ("crash-recover-wave", "adversary-handoff"):
            case = {
                "n": 6,
                "theta": 1.001,
                "d": 1.0,
                "u": 0.02,
                "adversary": "silent",
                "delay": "maximum",
                "drift": "extreme",
                "churn": key,
            }
            by_level = {}
            for level in ("pulses", "full"):
                verdicts, result = run_churn_conformance(
                    case, pulses=12, seed=7, trace=level
                )
                by_level[level] = (
                    [v.as_dict() for v in verdicts],
                    result.pulses,
                )
            assert by_level["pulses"] == by_level["full"]

    def test_serial_and_pool_records_agree(self):
        definition = campaign_definition("CHURN-STRESS")
        runs = {
            workers: execute_campaign(
                definition.spec(),
                scale="quick",
                policy=ExecutionPolicy(workers=workers),
            )
            for workers in (1, 2)
        }
        serial = [
            (r.case_key, r.metrics, r.error)
            for r in runs[1].records
        ]
        pooled = [
            (r.case_key, r.metrics, r.error)
            for r in runs[2].records
        ]
        assert serial == pooled
        assert runs[1].failed == 0


class TestZeroCostWhenUnused:
    def test_static_run_has_no_dynamics(self):
        case = {
            "n": 6,
            "theta": 1.001,
            "d": 1.0,
            "u": 0.02,
            "adversary": "silent",
            "delay": "maximum",
            "drift": "extreme",
        }
        simulation, _params, _f, _eff = build_simulation(case, seed=3).legacy_tuple()
        assert simulation.dynamics is None

    def test_empty_schedule_is_inert(self):
        params = _params()
        base = assemble_cps_simulation(
            params, faulty=[4, 5], seed=1, clock_style="extreme"
        )
        base_result = base.run(max_pulses=8)
        controller = ChurnController(
            FaultSchedule(corruptions=2), params
        )
        churned = assemble_cps_simulation(
            params,
            faulty=[4, 5],
            seed=1,
            clock_style="extreme",
            dynamics=controller,
        )
        churn_result = churned.run(max_pulses=8)
        assert churn_result.pulses == base_result.pulses
        assert (
            churn_result.events_processed == base_result.events_processed
        )
        assert controller.applied == []
