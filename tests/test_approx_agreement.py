"""Tests for Algorithm APA: the midpoint rule and iterated agreement.

The hypothesis properties operationalize Lemmas 7/8 and Theorem 9: for
*any* placement of up to ``f`` Byzantine values (with any split between
⊥ and in-band values), the midpoint rule's output stays within the honest
range, and two nodes' outputs under crusader-consistent receptions are at
most half the honest range apart.
"""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import max_faults
from repro.sim.errors import ConfigurationError, SimulationError
from repro.sync.approx_agreement import (
    ApaEquivocatingAdversary,
    ApaExtremeAdversary,
    ApaSplitAdversary,
    iterations_for_target,
    midpoint_rule,
    run_apa,
)


class TestMidpointRule:
    def test_no_faults_midpoint_of_range(self):
        value, interval = midpoint_rule([1.0, 2.0, 4.0], 0, 0)
        assert value == 2.5
        assert interval == (1.0, 4.0)

    def test_discards_extremes(self):
        value, interval = midpoint_rule([-100.0, 1.0, 2.0, 3.0, 100.0], 0, 1)
        assert interval == (1.0, 3.0)
        assert value == 2.0

    def test_discards_two_per_side(self):
        value, interval = midpoint_rule([-100.0, 1.0, 2.0, 3.0, 100.0], 0, 2)
        assert interval == (2.0, 2.0)
        assert value == 2.0

    def test_bot_values_reduce_discard(self):
        # f=2 but one ⊥ observed -> discard only 1 per side.
        value, interval = midpoint_rule([-100.0, 1.0, 3.0, 100.0], 1, 2)
        assert interval == (1.0, 3.0)

    def test_more_bots_than_f_discards_nothing(self):
        value, interval = midpoint_rule([1.0, 5.0], 3, 2)
        assert interval == (1.0, 5.0)

    def test_under_determined_raises(self):
        with pytest.raises(SimulationError):
            midpoint_rule([1.0, 2.0], 0, 1)

    def test_negative_bot_count_rejected(self):
        with pytest.raises(ConfigurationError):
            midpoint_rule([1.0], -1, 0)

    @given(
        honest=st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=9
        ),
        byzantine=st.lists(
            st.floats(min_value=-1e9, max_value=1e9), min_size=0, max_size=4
        ),
        extra_bots=st.integers(min_value=0, max_value=4),
    )
    def test_validity_property(self, honest, byzantine, extra_bots):
        """Lemma-8 style validity: with f = len(byzantine) + extra_bots
        faults total (the ⊥s prove extra_bots of them), the midpoint stays
        within the honest range — whenever the rule is determined."""
        f = len(byzantine) + extra_bots
        values = honest + byzantine
        if len(values) <= 2 * max(f - extra_bots, 0):
            return  # outside the model (n <= 2f)
        value, _ = midpoint_rule(values, extra_bots, f)
        assert min(honest) - 1e-9 <= value <= max(honest) + 1e-9


class TestIterationsForTarget:
    def test_exact_powers(self):
        assert iterations_for_target(64.0, 1.0) == 6

    def test_already_converged(self):
        assert iterations_for_target(0.5, 1.0) == 0

    def test_invalid_target(self):
        with pytest.raises(ConfigurationError):
            iterations_for_target(1.0, 0.0)


def spread(outputs):
    values = list(outputs.values())
    return max(values) - min(values)


class TestApaProtocol:
    def test_halving_no_faults(self):
        n = 5
        inputs = {v: float(v) for v in range(n)}
        result = run_apa(inputs, n, f=0, iterations=3)
        ranges = result.ranges()
        for before, after in zip(ranges, ranges[1:]):
            assert after <= before / 2 + 1e-9

    @pytest.mark.parametrize(
        "adversary_cls",
        [ApaExtremeAdversary, ApaSplitAdversary, ApaEquivocatingAdversary],
    )
    @pytest.mark.parametrize("n", [5, 9])
    def test_halving_under_attack_at_max_resilience(self, adversary_cls, n):
        f = max_faults(n)
        faulty = list(range(n - f, n))
        honest = [v for v in range(n) if v not in faulty]
        inputs = {v: 10.0 * i for i, v in enumerate(honest)}
        result = run_apa(
            inputs, n, f, faulty, adversary_cls(-1e4, 1e4), iterations=4
        )
        ranges = result.ranges()
        for before, after in zip(ranges, ranges[1:]):
            assert after <= before / 2 + 1e-9

    @pytest.mark.parametrize(
        "adversary_cls",
        [ApaExtremeAdversary, ApaSplitAdversary, ApaEquivocatingAdversary],
    )
    def test_validity_under_attack(self, adversary_cls):
        n, f = 7, max_faults(7)
        faulty = list(range(n - f, n))
        honest = [v for v in range(n) if v not in faulty]
        inputs = {v: float(i) for i, v in enumerate(honest)}
        result = run_apa(
            inputs, n, f, faulty, adversary_cls(-1e4, 1e4), iterations=2
        )
        low = min(inputs.values())
        high = max(inputs.values())
        for output in result.outputs.values():
            assert low - 1e-9 <= output <= high + 1e-9

    def test_corollary2_round_count_reaches_target(self):
        n = 9
        f = max_faults(n)
        faulty = list(range(n - f, n))
        honest = [v for v in range(n) if v not in faulty]
        initial_range, target = 100.0, 0.5
        iterations = iterations_for_target(initial_range, target)
        inputs = {
            v: initial_range * i / (len(honest) - 1)
            for i, v in enumerate(honest)
        }
        result = run_apa(
            inputs,
            n,
            f,
            faulty,
            ApaExtremeAdversary(-1e5, 1e5),
            iterations=iterations,
        )
        assert spread(result.outputs) <= target + 1e-9

    def test_agreed_inputs_stay_agreed(self):
        n = 5
        inputs = {v: 7.0 for v in range(n)}
        result = run_apa(inputs, n, f=0, iterations=2)
        assert all(output == pytest.approx(7.0) for output in
                   result.outputs.values())

    def test_history_records_bots_for_split_adversary(self):
        n, f = 6, max_faults(6)
        faulty = list(range(n - f, n))
        honest = [v for v in range(n) if v not in faulty]
        inputs = {v: float(v) for v in honest}
        result = run_apa(
            inputs, n, f, faulty, ApaSplitAdversary(-10.0, 10.0),
            iterations=1,
        )
        assert any(
            record.num_bot > 0
            for node in result.nodes.values()
            for record in node.history
        )

    def test_requires_at_least_one_iteration(self):
        from repro.sync.approx_agreement import ApaNode

        with pytest.raises(ConfigurationError):
            ApaNode(0.0, 0)

    @settings(deadline=None, max_examples=25)
    @given(
        seed=st.integers(0, 1000),
        n=st.integers(4, 9),
        data=st.data(),
    )
    def test_property_halving_with_random_inputs(self, seed, n, data):
        """Theorem 9 as a property over random inputs and extreme attacks."""
        f = max_faults(n)
        faulty = list(range(n - f, n))
        honest = [v for v in range(n) if v not in faulty]
        inputs = {
            v: data.draw(st.floats(min_value=-100.0, max_value=100.0))
            for v in honest
        }
        result = run_apa(
            inputs,
            n,
            f,
            faulty,
            ApaExtremeAdversary(-1e5, 1e5),
            iterations=2,
            seed=seed,
        )
        ranges = result.ranges()
        assert ranges[1] <= ranges[0] / 2 + 1e-9
        assert ranges[2] <= ranges[1] / 2 + 1e-9
