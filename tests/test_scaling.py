"""Elastic queue execution and adaptive sampling (ISSUE 9 tentpole).

Covers the scaling layer end to end:

* ``WorkQueue`` protocol units — exclusive claims, heartbeats, stale
  lease reclaim, completion markers;
* crash/resume — a worker dying mid-shard loses only its lease, and
  the reclaiming worker re-executes only the unrecorded trials;
* two concurrent writers produce a store whose ``load()`` equals the
  serial run's;
* the queued coordinator path matches the pool path record for
  record;
* adaptive sampling — per-cell stopping on a CI-width target that is
  deterministic across worker counts and demonstrably cheaper than
  fixed replication.
"""

import os
import random
import threading
import time

import pytest

from repro.campaigns import (
    AdaptivePolicy,
    CampaignSpec,
    ExecutionPolicy,
    QueueError,
    ResultStore,
    ScenarioSpec,
    WorkQueue,
    execute_adaptive_campaign,
    execute_campaign,
    register_builder,
    run_worker,
)
from repro.campaigns.queue import default_worker_id
from repro.telemetry.campaign import campaign_telemetry


@register_builder("scale-log")
def _logged_trial(case, measurement, seed):
    """Square a number, appending an execution log line (crash tests
    count executions through it)."""
    with open(case["log"], "a", encoding="utf-8") as handle:
        handle.write(f"{case['x']}\n")
    return {"square": case["x"] ** 2, "max_skew": float(case["x"])}


@register_builder("scale-noisy")
def _noisy_trial(case, measurement, seed):
    """A seed-deterministic noisy metric: cells with small ``spread``
    converge fast under the adaptive stopping rule, wide ones don't."""
    rng = random.Random(seed)
    return {"max_skew": case["base"] + rng.random() * case["spread"]}


@register_builder("scale-slow")
def _slow_trial(case, measurement, seed):
    time.sleep(case.get("delay", 0.02))
    return {"square": case["x"] ** 2}


@register_builder("scale-boom")
def _boom_trial(case, measurement, seed):
    raise ValueError("boom")


def _log_spec(log_path, xs=(1, 2, 3, 4, 5, 6), name="logged"):
    return CampaignSpec(
        name=name,
        scenarios=(
            ScenarioSpec(
                builder="scale-log",
                base={"log": str(log_path)},
                axes={"*": {"x": xs}},
            ),
        ),
    )


def _noisy_spec(name="noisy", seed=0):
    return CampaignSpec(
        name=name,
        scenarios=(
            ScenarioSpec(
                builder="scale-noisy",
                cases={
                    "*": (
                        {"base": 1.0, "spread": 0.001},
                        {"base": 2.0, "spread": 0.001},
                        {"base": 3.0, "spread": 5.0},
                    )
                },
            ),
        ),
        seed=seed,
    )


def _log_counts(log_path):
    if not os.path.exists(log_path):
        return {}
    counts = {}
    with open(log_path, encoding="utf-8") as handle:
        for line in handle:
            x = int(line.strip())
            counts[x] = counts.get(x, 0) + 1
    return counts


# ----------------------------------------------------------------------
# Queue protocol units
# ----------------------------------------------------------------------


class TestWorkQueue:
    def test_enqueue_publishes_manifest_and_chunks(self, tmp_path):
        spec = _log_spec(tmp_path / "log")
        queue = WorkQueue(tmp_path / "q")
        manifest = queue.enqueue(spec, "quick", chunk_size=2)
        assert manifest["campaign"] == "logged"
        assert manifest["chunks"] == 3 and manifest["trials"] == 6
        assert manifest["spec_key"] == spec.spec_key("quick")
        assert queue.manifest() == manifest
        assert queue.chunk_ids() == [
            "chunk-00000",
            "chunk-00001",
            "chunk-00002",
        ]
        assert not queue.all_done()

    def test_reenqueue_is_an_error(self, tmp_path):
        spec = _log_spec(tmp_path / "log")
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(spec, "quick")
        with pytest.raises(QueueError, match="already"):
            queue.enqueue(spec, "quick")

    def test_claims_are_mutually_exclusive_and_ordered(self, tmp_path):
        spec = _log_spec(tmp_path / "log")
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(spec, "quick", chunk_size=3)
        first = queue.claim("a")
        second = queue.claim("b")
        assert first.chunk == "chunk-00000"
        assert second.chunk == "chunk-00001"
        assert first.indices == [0, 1, 2]
        assert queue.claim("c") is None  # both live, nothing open

    def test_complete_marks_done_and_releases(self, tmp_path):
        spec = _log_spec(tmp_path / "log", xs=(1, 2))
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(spec, "quick", chunk_size=2)
        lease = queue.claim("a")
        assert not queue.all_done()
        queue.complete(lease)
        assert queue.all_done()
        assert queue.status() == {
            "chunks": 1,
            "done": 1,
            "claimed": 0,
            "open": 0,
        }
        assert queue.claim("b") is None

    def test_stale_lease_is_reclaimed_fresh_is_not(self, tmp_path):
        spec = _log_spec(tmp_path / "log", xs=(1, 2))
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(spec, "quick", chunk_size=2)
        lease = queue.claim("dying-worker")
        # Fresh heartbeat: not reclaimable.
        assert queue.claim("b", lease_ttl=60.0) is None
        # Backdate the heartbeat past the TTL: reclaimable.
        stale = time.time() - 120.0
        os.utime(queue.claim_path(lease.chunk), (stale, stale))
        reclaimed = queue.claim("b", lease_ttl=60.0)
        assert reclaimed is not None
        assert reclaimed.chunk == lease.chunk
        assert reclaimed.reclaimed is True
        assert reclaimed.worker == "b"

    def test_heartbeat_refreshes_the_lease(self, tmp_path):
        spec = _log_spec(tmp_path / "log", xs=(1, 2))
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(spec, "quick", chunk_size=2)
        lease = queue.claim("a")
        stale = time.time() - 120.0
        os.utime(queue.claim_path(lease.chunk), (stale, stale))
        queue.heartbeat(lease)
        assert queue.claim("b", lease_ttl=60.0) is None

    def test_default_worker_id_is_a_valid_shard_name(self, tmp_path):
        store = ResultStore(tmp_path)
        # Raises ValueError if the derived name violates shard rules.
        assert store.path_for("k", default_worker_id())


# ----------------------------------------------------------------------
# Workers: drain, concurrency, crash/resume
# ----------------------------------------------------------------------


class TestRunWorker:
    def test_worker_requires_an_enqueued_campaign(self, tmp_path):
        with pytest.raises(QueueError, match="no campaign enqueued"):
            run_worker(tmp_path / "empty", ResultStore(tmp_path / "s"))

    def test_spec_key_mismatch_is_an_error(self, tmp_path):
        spec = _log_spec(tmp_path / "log")
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(spec, "quick")
        other = _log_spec(tmp_path / "log", name="other")
        with pytest.raises(QueueError, match="spec key mismatch"):
            run_worker(
                tmp_path / "q",
                ResultStore(tmp_path / "s"),
                spec=other,
            )

    def test_single_worker_drains_and_matches_serial(self, tmp_path):
        spec = _log_spec(tmp_path / "log")
        serial = execute_campaign(spec)
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(spec, "quick", chunk_size=2)
        store = ResultStore(tmp_path / "store")
        stats = run_worker(
            tmp_path / "q", store, spec=spec, worker_id="w1"
        )
        assert stats["chunks"] == 3 and stats["trials"] == 6
        assert queue.all_done()
        loaded = store.load(spec.spec_key("quick"))
        assert {
            k: r.metrics for k, r in loaded.items()
        } == {r.case_key: r.metrics for r in serial.records}
        assert store.shards(spec.spec_key("quick")) == ["w1"]

    def test_two_concurrent_writers_equal_serial_load(self, tmp_path):
        # Satellite: concurrent appenders through disjoint shards must
        # yield a store whose load() equals the serial run's.
        spec = CampaignSpec(
            name="concurrent",
            scenarios=(
                ScenarioSpec(
                    builder="scale-slow",
                    base={"delay": 0.03},
                    axes={"*": {"x": tuple(range(8))}},
                ),
            ),
        )
        serial = execute_campaign(spec)
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(spec, "quick", chunk_size=1)
        store = ResultStore(tmp_path / "store")
        results = {}

        def drain(worker_id):
            results[worker_id] = run_worker(
                tmp_path / "q",
                store,
                spec=spec,
                worker_id=worker_id,
                poll=0.05,
            )

        threads = [
            threading.Thread(target=drain, args=(w,))
            for w in ("wa", "wb")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        key = spec.spec_key("quick")
        loaded = store.load(key)
        assert {
            k: r.metrics for k, r in loaded.items()
        } == {r.case_key: r.metrics for r in serial.records}
        total = sum(r["trials"] for r in results.values())
        assert total == 8  # every trial executed exactly once
        merged = store.merge(key)
        assert merged["records"] == 8 and merged["dropped"] == 0

    def test_crash_midshard_reclaims_only_the_lost_lease(
        self, tmp_path
    ):
        # Simulate worker A dying mid-chunk: it claimed chunk 0, ran
        # only the first of its two trials (persisted to its shard),
        # then stopped heartbeating.  Worker B must reclaim exactly
        # that lease and re-execute only the unrecorded trial.
        log = tmp_path / "log"
        spec = _log_spec(log)
        key = spec.spec_key("quick")
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(spec, "quick", chunk_size=2)
        store = ResultStore(tmp_path / "store")

        plans = spec.trials_for("quick")
        dead = queue.claim("wa")
        assert dead.indices == [0, 1]
        from repro.campaigns import run_trial

        store.append(key, run_trial(plans[0]), shard="wa")
        stale = time.time() - 120.0
        os.utime(queue.claim_path(dead.chunk), (stale, stale))

        stats = run_worker(
            tmp_path / "q",
            store,
            spec=spec,
            worker_id="wb",
            lease_ttl=60.0,
            poll=0.05,
        )
        assert stats["reclaimed"] == 1
        assert stats["skipped"] == 1  # plan 0: already in wa's shard
        assert stats["trials"] == 5  # plan 1 + chunks 1 and 2
        assert queue.all_done()
        # Every trial executed exactly once across both lives.
        assert _log_counts(log) == {x: 1 for x in (1, 2, 3, 4, 5, 6)}
        assert len(store.load(key)) == 6


# ----------------------------------------------------------------------
# Queued coordinator (ExecutionPolicy.queue)
# ----------------------------------------------------------------------


class TestQueueCoordinator:
    def test_queue_mode_requires_store(self, tmp_path):
        spec = _log_spec(tmp_path / "log")
        with pytest.raises(ValueError, match="requires a result store"):
            execute_campaign(
                spec,
                policy=ExecutionPolicy(queue=str(tmp_path / "q")),
            )

    def test_queue_mode_rejects_fresh_and_timeout(self, tmp_path):
        spec = _log_spec(tmp_path / "log")
        store = ResultStore(tmp_path / "store")
        policy = ExecutionPolicy(queue=str(tmp_path / "q"))
        with pytest.raises(ValueError, match="reuses the store"):
            execute_campaign(
                spec, policy=policy, store=store, reuse=False
            )
        with pytest.raises(ValueError, match="timeouts are not"):
            execute_campaign(
                spec,
                policy=ExecutionPolicy(
                    queue=str(tmp_path / "q"), timeout=1.0
                ),
                store=store,
            )

    def test_coordinator_matches_pool_run(self, tmp_path):
        spec = _log_spec(tmp_path / "log-a", name="coordinated")
        pool = execute_campaign(
            spec,
            policy=ExecutionPolicy(workers=2, chunk_size=2),
            store=ResultStore(tmp_path / "store-pool"),
        )
        queued_spec = _log_spec(tmp_path / "log-a", name="coordinated")
        queued = execute_campaign(
            queued_spec,
            policy=ExecutionPolicy(
                queue=str(tmp_path / "q"),
                chunk_size=2,
                worker_id="coord",
            ),
            store=ResultStore(tmp_path / "store-q"),
        )
        assert queued.executed == 6 and queued.cached == 0
        assert [r.case_key for r in queued.records] == [
            r.case_key for r in pool.records
        ]
        for left, right in zip(pool.records, queued.records):
            assert left.metrics == right.metrics
            assert left.index == right.index

    def test_coordinator_replays_cache_and_reports_cached(
        self, tmp_path
    ):
        spec = _log_spec(tmp_path / "log")
        store = ResultStore(tmp_path / "store")
        execute_campaign(spec, store=store)
        rerun = execute_campaign(
            spec,
            policy=ExecutionPolicy(queue=str(tmp_path / "q")),
            store=store,
        )
        assert rerun.executed == 0 and rerun.cached == 6
        assert all(record.cached for record in rerun.records)
        # A fully-cached campaign enqueues zero chunks.
        assert WorkQueue(str(tmp_path / "q")).chunk_ids() == []


# ----------------------------------------------------------------------
# Adaptive sampling
# ----------------------------------------------------------------------


class TestAdaptivePolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="ci_width"):
            AdaptivePolicy(ci_width=0)
        with pytest.raises(ValueError, match="confidence"):
            AdaptivePolicy(ci_width=1.0, confidence=1.0)
        with pytest.raises(ValueError, match="min_trials"):
            AdaptivePolicy(ci_width=1.0, min_trials=1)
        with pytest.raises(ValueError, match="max_trials"):
            AdaptivePolicy(ci_width=1.0, min_trials=4, max_trials=3)

    def test_z_value_matches_confidence(self):
        assert AdaptivePolicy(
            ci_width=1.0, confidence=0.95
        ).z_value == pytest.approx(1.9599, abs=1e-3)


class TestReplicatePlans:
    def test_replicate_zero_is_the_plan_itself(self):
        spec = _noisy_spec()
        plan = spec.trials_for("quick")[0]
        assert spec.replicate_plan(plan, 0) is plan

    def test_replicates_get_distinct_seeds_and_keys(self):
        spec = _noisy_spec()
        plan = spec.trials_for("quick")[0]
        reps = [spec.replicate_plan(plan, r) for r in range(4)]
        assert len({rp.case_key for rp in reps}) == 4
        assert len({rp.seed for rp in reps}) == 4
        assert reps[2].case["replicate"] == 2
        assert "replicate" not in plan.case

    def test_pinned_seed_steps_by_replicate(self):
        spec = CampaignSpec(
            name="pinned",
            scenarios=(
                ScenarioSpec(
                    builder="scale-noisy",
                    cases={
                        "*": (
                            {"base": 0.0, "spread": 1.0, "seed": 100},
                        )
                    },
                ),
            ),
        )
        plan = spec.trials_for("quick")[0]
        assert spec.replicate_plan(plan, 3).seed == 103


class TestAdaptiveSampling:
    def test_converged_cells_stop_early_wide_cells_run_to_cap(self):
        run = execute_adaptive_campaign(
            _noisy_spec(),
            adaptive=AdaptivePolicy(
                ci_width=0.01, min_trials=2, max_trials=6
            ),
        )
        a = run.adaptive
        assert a["cells"] == 3
        assert a["converged"] == 2 and a["exhausted"] == 1
        per_cell = {c["case_key"]: c for c in a["per_cell"]}
        ns = sorted(c["n"] for c in per_cell.values())
        assert ns[:2] == [2, 2]  # tight cells stopped at min_trials
        assert ns[2] == 6  # the wide cell hit the cap
        assert a["trials"] == sum(ns) == len(run.records)
        assert a["saved"] == a["fixed_trials"] - a["trials"] > 0

    def test_deterministic_across_worker_counts(self):
        adaptive = AdaptivePolicy(
            ci_width=0.01, min_trials=2, max_trials=5
        )
        serial = execute_adaptive_campaign(
            _noisy_spec(), adaptive=adaptive
        )
        pooled = execute_adaptive_campaign(
            _noisy_spec(),
            adaptive=adaptive,
            policy=ExecutionPolicy(workers=3, chunk_size=1),
        )
        assert [r.case_key for r in serial.records] == [
            r.case_key for r in pooled.records
        ]
        for left, right in zip(serial.records, pooled.records):
            assert left.metrics == right.metrics
        assert serial.adaptive == pooled.adaptive

    def test_error_cells_never_converge(self):
        spec = CampaignSpec(
            name="adaptive-boom",
            scenarios=(
                ScenarioSpec(
                    builder="scale-boom", axes={"*": {"x": (1,)}}
                ),
            ),
        )
        run = execute_adaptive_campaign(
            spec,
            adaptive=AdaptivePolicy(
                ci_width=10.0, min_trials=2, max_trials=4
            ),
        )
        assert run.adaptive["converged"] == 0
        assert run.adaptive["per_cell"][0]["n"] == 4
        assert run.failed == 4

    def test_store_resume_replays_every_replicate(self, tmp_path):
        store = ResultStore(tmp_path)
        adaptive = AdaptivePolicy(
            ci_width=0.01, min_trials=2, max_trials=5
        )
        first = execute_adaptive_campaign(
            _noisy_spec(), adaptive=adaptive, store=store
        )
        again = execute_adaptive_campaign(
            _noisy_spec(), adaptive=adaptive, store=store
        )
        assert first.executed == first.adaptive["trials"]
        assert again.executed == 0
        assert again.cached == first.adaptive["trials"]
        assert again.adaptive == first.adaptive
        assert [r.case_key for r in again.records] == [
            r.case_key for r in first.records
        ]

    def test_queue_mode_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="incompatible"):
            execute_adaptive_campaign(
                _noisy_spec(),
                adaptive=AdaptivePolicy(ci_width=1.0),
                policy=ExecutionPolicy(queue=str(tmp_path / "q")),
            )

    def test_telemetry_sidecar_records_the_summary(self):
        run = execute_adaptive_campaign(
            _noisy_spec(),
            adaptive=AdaptivePolicy(
                ci_width=0.01, min_trials=2, max_trials=4
            ),
        )
        payload = campaign_telemetry(run)
        assert payload["adaptive"]["metric"] == "max_skew"
        assert "per_cell" not in payload["adaptive"]
        fixed = execute_campaign(_noisy_spec(name="noisy-fixed"))
        assert "adaptive" not in campaign_telemetry(fixed)
