"""The vectorized backend and the ``build_simulation`` facade.

The backbone is the differential oracle: the same registry-keyed case,
built twice through :func:`repro.build.build_simulation` — once on the
event engine, once on the round-batched numpy engine — must produce an
*identical* monitor verdict matrix, and (for deterministic delay
policies) pulse streams that agree to floating-point tolerance.
Random-delay scenarios are compared at the verdict level only: the two
engines deliver messages in different orders, so draw-order equality is
unattainable by construction (see ``repro.sim.vectorized.delays``).

The rest covers the facade contract (backend resolution, deprecation
shims, hash stability of ``MeasurementSpec.backend``), the unsupported-
scenario envelope, the delay-matrix fast paths against the scalar
policies they mirror, and the CLI/perf ``--backend`` plumbing.
"""

import json
import warnings

import numpy as np
import pytest

from repro.build import (
    BACKENDS,
    BuiltSimulation,
    UnknownBackendError,
    build_simulation,
    resolve_backend,
)
from repro.campaigns.spec import MeasurementSpec, canonical_json
from repro.checks.conformance import (
    check_scenario,
    conformance_matrix,
    run_cps_conformance,
)
from repro.cli import main
from repro.core.cps import assemble_cps_simulation, build_cps_simulation
from repro.core.params import derive_parameters
from repro.perf.cases import run_case
from repro.scenarios import REGISTRY
from repro.sim.errors import ConfigurationError
from repro.sim.network import NetworkConfig
from repro.sim.vectorized import (
    UnsupportedScenarioError,
    VectorizedSimulation,
)
from repro.sim.vectorized.delays import delay_matrix

BASE_CASE = {"n": 6, "theta": 1.001, "d": 1.0, "u": 0.02}

#: Deterministic-delay differential sample: every drift profile and
#: every closed-form deterministic delay policy appears at least once.
DETERMINISTIC_SCENARIOS = [
    {"delay": "maximum", "drift": "extreme"},
    {"delay": "minimum", "drift": "mixed"},
    {"delay": "skewing", "drift": "staggered"},
    {"delay": "eclipse", "drift": "random"},
    {"delay": "biased-partition", "drift": "extreme"},
    {"delay": "flicker-partition", "drift": "mixed"},
    {"delay": "constant-fraction", "drift": "random"},
]


def _case(**keys):
    case = dict(BASE_CASE)
    case.setdefault("adversary", "silent")
    case.update(keys)
    return case


def _verdict_dicts(verdicts):
    return [v.as_dict() for v in verdicts]


def _run_both(case, pulses=6, seed=11):
    event = run_cps_conformance(case, pulses, seed, backend="event")
    vector = run_cps_conformance(
        case, pulses, seed, backend="vectorized"
    )
    return event, vector


class TestDifferentialOracle:
    @pytest.mark.parametrize(
        "scenario",
        DETERMINISTIC_SCENARIOS,
        ids=lambda s: f"{s['delay']}-{s['drift']}",
    )
    def test_verdicts_and_pulses_identical(self, scenario):
        case = _case(**scenario)
        (ev, ev_result), (vec, vec_result) = _run_both(case)
        assert _verdict_dicts(ev) == _verdict_dicts(vec)
        assert all(v.ok for v in ev)
        assert set(ev_result.pulses) == set(vec_result.pulses)
        for node, times in ev_result.pulses.items():
            assert vec_result.pulses[node] == pytest.approx(
                times, abs=1e-9
            )

    def test_random_delays_verdict_level_only(self):
        # Different (but both admissible) delay draws: the monitor
        # matrix must agree, pulse times need not.
        case = _case(delay="random", drift="random")
        (ev, _er), (vec, _vr) = _run_both(case)
        assert [(v.monitor, v.ok) for v in ev] == [
            (v.monitor, v.ok) for v in vec
        ]
        assert all(v.ok for v in vec)

    def test_quota_stop_semantics_match(self):
        # The event engine halts the instant the slowest node emits
        # its quota-filling pulse, so round P's broadcasts never
        # happen; tcb-consistency sees honest * (P - 1) evaluations.
        case = _case(delay="maximum", drift="extreme")
        pulses = 5
        (ev, _er), (vec, _vr) = _run_both(case, pulses=pulses)
        honest = BASE_CASE["n"] - derive_parameters(
            theta=1.001, u=0.02, d=1.0, n=6
        ).f
        for verdicts in (ev, vec):
            tcb = next(
                v for v in verdicts if v.monitor == "tcb-consistency"
            )
            assert tcb.checked == honest * (pulses - 1)

    def test_final_skew_matches(self):
        from repro.analysis import metrics

        case = _case(delay="skewing", drift="extreme")
        (_ev, ev_result), (_vec, vec_result) = _run_both(case)

        def honest_pulses(result):
            return {v: p for v, p in result.pulses.items() if p}

        assert metrics.max_skew(
            honest_pulses(vec_result)
        ) == pytest.approx(
            metrics.max_skew(honest_pulses(ev_result)), abs=1e-9
        )


class TestFacade:
    def test_backend_catalog(self):
        assert BACKENDS == ("event", "vectorized")
        assert resolve_backend(None) == "event"
        assert resolve_backend("vectorized") == "vectorized"

    def test_unknown_backend_did_you_mean(self):
        with pytest.raises(UnknownBackendError, match="vectorized"):
            resolve_backend("vectorised")

    def test_built_simulation_carries_backend(self):
        built = build_simulation(_case(), backend="vectorized")
        assert isinstance(built, BuiltSimulation)
        assert built.backend == "vectorized"
        assert isinstance(built.simulation, VectorizedSimulation)
        simulation, params, f, effective = built.legacy_tuple()
        assert simulation is built.simulation
        assert params is built.params
        assert f == built.f

    def test_event_default(self):
        built = build_simulation(_case())
        assert built.backend == "event"
        assert not isinstance(built.simulation, VectorizedSimulation)

    def test_identical_clocks_across_backends(self):
        # Both engines must see the same hardware clocks for the same
        # (case, seed) — the root of the differential guarantee.
        case = _case(drift="random")
        ev = build_simulation(case, backend="event", seed=5)
        vec = build_simulation(case, backend="vectorized", seed=5)
        for a, b in zip(ev.simulation.clocks, vec.simulation.clocks):
            for t in (0.0, 1.0, 7.5, 31.25):
                assert a.local_time(t) == pytest.approx(
                    b.local_time(t), abs=1e-12
                )


class TestUnsupportedScenarios:
    @pytest.mark.parametrize(
        "case",
        [
            _case(adversary="mimic-split"),
            _case(adversary="coordinated-offset"),
            {**_case(), "churn": "single-crash"},
        ],
        ids=["mimic-split", "coordinated-offset", "churn"],
    )
    def test_build_time_rejection(self, case):
        with pytest.raises(UnsupportedScenarioError):
            build_simulation(case, backend="vectorized")
        # The same case builds fine on the event engine.
        assert build_simulation(case, backend="event").simulation

    def test_non_cps_modes_tabulated_as_errors(self):
        report = check_scenario(
            "churn", "single-crash", backend="vectorized"
        )
        assert not report.ok
        assert "UnsupportedScenarioError" in report.error


class TestDelayMatrix:
    N = 6

    def _policies(self):
        for key in REGISTRY.keys("delay"):
            yield key, REGISTRY.create("delay", key, self.N)

    def test_shapes_with_partial_receiver_block(self):
        # Regression: sender-only masks (skewing) once broadcast to
        # (1, senders) instead of (receivers, senders).
        config = NetworkConfig(n=self.N, d=1.0, u=0.02)
        senders = list(range(self.N))
        receivers = senders[:3]
        send_real = np.linspace(0.0, 0.5, self.N)
        rng = np.random.default_rng(0)
        for key, policy in self._policies():
            matrix = delay_matrix(
                policy, config, senders, receivers, send_real, rng
            )
            assert matrix.shape == (3, self.N), key

    def test_fast_paths_match_scalar_policies(self):
        config = NetworkConfig(n=self.N, d=1.0, u=0.02)
        senders = list(range(self.N))
        send_real = np.full(self.N, 2.0)
        for key, policy in self._policies():
            if key == "random":
                continue
            matrix = delay_matrix(
                policy, config, senders, senders, send_real, None
            )
            for i in senders:
                for j in senders:
                    expected = policy.delay(
                        config, j, i, 2.0, None, True
                    )
                    assert matrix[i, j] == pytest.approx(
                        expected, abs=1e-12
                    ), key


class TestDeprecationShims:
    def test_build_cps_simulation_warns_and_matches(self):
        params = derive_parameters(theta=1.001, u=0.02, d=1.0, n=4)
        with pytest.warns(DeprecationWarning, match="assemble"):
            deprecated = build_cps_simulation(params, seed=3)
        reference = assemble_cps_simulation(params, seed=3)
        old = deprecated.run(max_pulses=4)
        new = reference.run(max_pulses=4)
        assert old.pulses == new.pulses

    def test_build_registry_simulation_warns_and_matches(self):
        from repro.campaigns.builders import build_registry_simulation

        case = _case(delay="skewing", drift="mixed")
        with pytest.warns(DeprecationWarning, match="build_simulation"):
            sim, params, f, effective = build_registry_simulation(
                case, seed=9
            )
        built = build_simulation(case, seed=9)
        assert f == built.f
        assert params.S == built.params.S
        old = sim.run(max_pulses=4)
        new = built.simulation.run(max_pulses=4)
        assert old.pulses == new.pulses


class TestHashStability:
    def test_default_backend_omitted_from_spec_dict(self):
        # Pre-facade spec keys (and the committed result stores keyed
        # by them) must hash unchanged.
        assert "backend" not in MeasurementSpec().as_dict()
        spec = MeasurementSpec(backend="vectorized")
        assert spec.as_dict()["backend"] == "vectorized"
        assert canonical_json(MeasurementSpec()) == canonical_json(
            MeasurementSpec(backend="event")
        )
        assert canonical_json(spec) != canonical_json(
            MeasurementSpec()
        )

    def test_invalid_backend_rejected_at_construction(self):
        with pytest.raises(UnknownBackendError):
            MeasurementSpec(backend="vectorised")

    def test_matrix_payload_backend_key_only_when_non_default(self):
        event = conformance_matrix(kinds=("drift",))
        vector = conformance_matrix(
            kinds=("drift",), backend="vectorized"
        )
        assert "backend" not in event
        assert vector["backend"] == "vectorized"
        assert vector["pass"]
        # Both payloads stay JSON-serializable (the CLI writes them).
        json.dumps(event), json.dumps(vector)


class TestCliBackendFlag:
    def test_check_run_vectorized(self, capsys):
        assert (
            main(
                [
                    "check", "run", "maximum", "--kind", "delay",
                    "--backend", "vectorized",
                ]
            )
            == 0
        )
        assert "PASS" in capsys.readouterr().out

    def test_backend_did_you_mean(self):
        with pytest.raises(SystemExit, match="did you mean"):
            main(
                [
                    "check", "run", "maximum", "--kind", "delay",
                    "--backend", "vectorised",
                ]
            )

    def test_check_matrix_refuses_default_out(self, capsys, tmp_path):
        import os

        cwd = os.getcwd()
        os.chdir(tmp_path)
        try:
            main(
                [
                    "check", "matrix", "--backend", "vectorized",
                    "--kind", "drift",
                ]
            )
        except SystemExit:
            pass  # matrix verdict exit code is irrelevant here
        finally:
            os.chdir(cwd)
        out = capsys.readouterr().out
        assert "not overwriting" in out
        assert not (tmp_path / "results" / "conformance.json").exists()


class TestPerfBackendThreading:
    def test_override_rejected_for_unaware_case(self):
        with pytest.raises(ConfigurationError, match="e9-vectorized"):
            run_case("queue-churn", backend="vectorized")

    def test_e9_case_defaults_to_vectorized(self):
        result = run_case("e9-vectorized-1k", repeats=1)
        assert result.meta["backend"] == "vectorized"
        assert result.meta["n"] == 1000
        assert result.meta["max_skew"] <= result.meta["bound_S"] + 1e-9


class TestE9ScaleCampaign:
    def test_registered_with_vectorized_measurements(self):
        from repro.analysis import experiments  # noqa: F401
        from repro.campaigns import campaign_definition

        spec = campaign_definition("E9-SCALE").spec()
        assert all(
            m.backend == "vectorized"
            for m in spec.measurements.values()
        )
        cases = spec.scenarios[0].grid_for("full")
        assert sorted(c["n"] for c in cases) == [100, 1000, 10000]

    def test_experiment_id_resolves(self):
        from repro.analysis.experiments import EXPERIMENTS

        assert "E9-SCALE" in EXPERIMENTS
