"""Unit and property tests for hardware clocks."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.clocks import (
    ClockSegment,
    HardwareClock,
    max_clock_offset,
    validate_initial_skew,
)
from repro.sim.errors import ClockError


class TestConstruction:
    def test_needs_at_least_one_segment(self):
        with pytest.raises(ClockError):
            HardwareClock([])

    def test_first_segment_starts_at_zero(self):
        with pytest.raises(ClockError):
            HardwareClock([ClockSegment(1.0, 0.0, 1.0)])

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ClockError):
            HardwareClock([ClockSegment(0.0, 0.0, 0.0)])

    def test_rejects_rate_above_theta(self):
        with pytest.raises(ClockError):
            HardwareClock([ClockSegment(0.0, 0.0, 1.2)], theta=1.1)

    def test_rejects_rate_below_one_with_theta(self):
        with pytest.raises(ClockError):
            HardwareClock([ClockSegment(0.0, 0.0, 0.9)], theta=1.1)

    def test_rejects_discontinuity(self):
        with pytest.raises(ClockError):
            HardwareClock(
                [
                    ClockSegment(0.0, 0.0, 1.0),
                    ClockSegment(1.0, 5.0, 1.0),
                ]
            )

    def test_rejects_unordered_segments(self):
        with pytest.raises(ClockError):
            HardwareClock(
                [
                    ClockSegment(0.0, 0.0, 1.0),
                    ClockSegment(0.0, 0.0, 1.0),
                ]
            )

    def test_rejects_negative_offset(self):
        with pytest.raises(ClockError):
            HardwareClock.constant_rate(1.0, offset=-1.0)


class TestEvaluation:
    def test_constant_rate(self):
        clock = HardwareClock.constant_rate(1.5, offset=2.0)
        assert clock.local_time(0.0) == pytest.approx(2.0)
        assert clock.local_time(4.0) == pytest.approx(8.0)

    def test_from_rates_piecewise(self):
        clock = HardwareClock.from_rates([(10.0, 1.1)], tail_rate=1.0)
        assert clock.local_time(10.0) == pytest.approx(11.0)
        assert clock.local_time(15.0) == pytest.approx(16.0)

    def test_rate_at(self):
        clock = HardwareClock.from_rates([(10.0, 1.1)], tail_rate=1.0)
        assert clock.rate_at(5.0) == pytest.approx(1.1)
        assert clock.rate_at(12.0) == pytest.approx(1.0)

    def test_negative_time_rejected(self):
        clock = HardwareClock.constant_rate()
        with pytest.raises(ClockError):
            clock.local_time(-1.0)

    def test_inverse_before_start_rejected(self):
        clock = HardwareClock.constant_rate(1.0, offset=5.0)
        with pytest.raises(ClockError):
            clock.real_time(1.0)

    def test_fast_then_shifted_shape(self):
        clock = HardwareClock.fast_then_shifted(1.1, shift=0.5)
        switch = 0.5 / 0.1
        assert clock.local_time(switch) == pytest.approx(1.1 * switch)
        assert clock.local_time(switch + 3.0) == pytest.approx(
            switch + 3.0 + 0.5
        )

    def test_fast_then_shifted_zero_shift_is_identity(self):
        clock = HardwareClock.fast_then_shifted(1.1, shift=0.0)
        assert clock.local_time(7.0) == pytest.approx(7.0)

    def test_fast_then_shifted_requires_drift(self):
        with pytest.raises(ClockError):
            HardwareClock.fast_then_shifted(1.0, shift=0.5)


class TestRandomDrift:
    def test_rates_within_bounds(self):
        clock = HardwareClock.random_drift(
            random.Random(0), theta=1.05, horizon=100.0, segment_length=5.0
        )
        for t in range(0, 120, 3):
            assert 1.0 - 1e-9 <= clock.rate_at(float(t)) <= 1.05 + 1e-9

    def test_deterministic_given_seed(self):
        a = HardwareClock.random_drift(random.Random(42), 1.05)
        b = HardwareClock.random_drift(random.Random(42), 1.05)
        for t in (0.0, 10.0, 99.0, 500.0):
            assert a.local_time(t) == b.local_time(t)


class TestHelpers:
    def test_max_clock_offset(self):
        clocks = [
            HardwareClock.constant_rate(1.0, offset=0.0),
            HardwareClock.constant_rate(1.0, offset=0.3),
        ]
        assert max_clock_offset(clocks, 5.0) == pytest.approx(0.3)

    def test_validate_initial_skew_accepts(self):
        clocks = [
            HardwareClock.constant_rate(1.0, offset=0.0),
            HardwareClock.constant_rate(1.0, offset=0.2),
        ]
        validate_initial_skew(clocks, 0.25)

    def test_validate_initial_skew_rejects(self):
        clocks = [
            HardwareClock.constant_rate(1.0, offset=0.0),
            HardwareClock.constant_rate(1.0, offset=0.5),
        ]
        with pytest.raises(ClockError):
            validate_initial_skew(clocks, 0.25)


@st.composite
def clock_strategy(draw):
    theta = draw(st.floats(min_value=1.0001, max_value=1.1))
    offset = draw(st.floats(min_value=0.0, max_value=5.0))
    pieces = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=20.0),
                st.floats(min_value=1.0, max_value=theta),
            ),
            min_size=0,
            max_size=6,
        )
    )
    return HardwareClock.from_rates(
        pieces, tail_rate=1.0, offset=offset, theta=theta
    ), theta


class TestProperties:
    @given(clock_strategy(), st.floats(min_value=0.0, max_value=200.0),
           st.floats(min_value=0.0, max_value=50.0))
    def test_drift_bounds(self, clock_theta, t, delta):
        """The defining property: t' - t <= H(t') - H(t) <= theta (t'-t)."""
        clock, theta = clock_theta
        elapsed = clock.local_time(t + delta) - clock.local_time(t)
        assert elapsed >= delta - 1e-6
        assert elapsed <= theta * delta + 1e-6

    @given(clock_strategy(), st.floats(min_value=0.0, max_value=200.0))
    def test_inverse_roundtrip(self, clock_theta, t):
        clock, _theta = clock_theta
        assert clock.real_time(clock.local_time(t)) == pytest.approx(
            t, abs=1e-6
        )

    @given(clock_strategy(), st.floats(min_value=0.0, max_value=300.0))
    def test_local_roundtrip(self, clock_theta, local_delta):
        clock, _theta = clock_theta
        local = clock.offset_at_zero + local_delta
        assert clock.local_time(clock.real_time(local)) == pytest.approx(
            local, abs=1e-6
        )
