"""Tests for metrics, reporting, theory bounds, and the trial runner."""

import math
import os

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import theory
from repro.analysis.metrics import (
    PulseReport,
    check_liveness,
    common_pulse_count,
    convergence_rounds,
    max_period,
    max_skew,
    min_period,
    pulse_skew,
    skew_trajectory,
)
from repro.analysis.reporting import (
    Table,
    format_value,
    geometric_mean,
    ratio,
)
from repro.analysis.runner import run_pulse_trial
from repro.core.params import derive_parameters
from repro.sim.errors import ConfigurationError

PULSES = {
    0: [1.0, 3.0, 5.0],
    1: [1.2, 3.1, 5.4],
    2: [0.9, 3.3, 5.2],
}


class TestMetrics:
    def test_common_pulse_count(self):
        assert common_pulse_count(PULSES) == 3
        with pytest.raises(ConfigurationError):
            common_pulse_count({})

    def test_pulse_skew(self):
        assert pulse_skew(PULSES, 0) == pytest.approx(0.3)
        assert pulse_skew(PULSES, 1) == pytest.approx(0.3)
        assert pulse_skew(PULSES, 2) == pytest.approx(0.4)

    def test_trajectory_and_max(self):
        assert skew_trajectory(PULSES) == pytest.approx([0.3, 0.3, 0.4])
        assert max_skew(PULSES) == pytest.approx(0.4)
        assert skew_trajectory(PULSES, skip=2) == pytest.approx([0.4])

    def test_max_skew_needs_data_after_skip(self):
        with pytest.raises(ConfigurationError):
            max_skew(PULSES, skip=5)

    def test_periods_match_definition3(self):
        # min over i of (min p_{i+1} - max p_i)
        assert min_period(PULSES) == pytest.approx(min(3.0 - 1.2, 5.0 - 3.3))
        assert max_period(PULSES) == pytest.approx(max(3.3 - 0.9, 5.4 - 3.0))

    def test_periods_need_two_pulses(self):
        with pytest.raises(ConfigurationError):
            min_period({0: [1.0]})

    def test_liveness(self):
        assert check_liveness(PULSES, 3)
        assert not check_liveness(PULSES, 4)
        assert not check_liveness({0: [2.0, 1.0]}, 2)

    def test_pulse_report(self):
        report = PulseReport.from_pulses(PULSES, warmup=1)
        assert report.nodes == 3
        assert report.pulses == 3
        assert report.max_skew == pytest.approx(0.4)
        assert report.steady_skew == pytest.approx(0.4)

    def test_convergence_rounds(self):
        trajectory = [8.0, 4.0, 2.0, 1.0, 1.0]
        assert convergence_rounds(trajectory, floor=1.0) == 3
        assert convergence_rounds(trajectory, floor=0.1) == 5

    @given(
        st.dictionaries(
            st.integers(0, 5),
            st.lists(
                st.floats(min_value=0.0, max_value=100.0),
                min_size=2,
                max_size=6,
            ).map(sorted),
            min_size=1,
            max_size=5,
        )
    )
    def test_skew_nonnegative_property(self, pulses):
        pulses = {
            k: [t + i * 1e-6 for i, t in enumerate(v)]
            for k, v in pulses.items()
        }
        count = common_pulse_count(pulses)
        for i in range(count):
            assert pulse_skew(pulses, i) >= 0.0


class TestReporting:
    def test_table_rendering(self):
        table = Table("Title", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", True)
        table.add_note("a note")
        rendered = table.render()
        assert "Title" in rendered
        assert "2.5" in rendered
        assert "yes" in rendered
        assert "note: a note" in rendered

    def test_row_arity_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_access(self):
        table = Table("T", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_csv_roundtrip(self, tmp_path):
        table = Table("T", ["a", "b"])
        table.add_row(1, 2.5)
        path = os.path.join(tmp_path, "out.csv")
        table.to_csv(path)
        with open(path) as handle:
            content = handle.read()
        assert "a,b" in content
        assert "2.5" in content

    def test_markdown(self):
        table = Table("T", ["a"])
        table.add_row(1)
        markdown = table.to_markdown()
        assert markdown.startswith("| a |")
        assert "| 1 |" in markdown

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(float("nan")) == "nan"
        assert "e" in format_value(1.23e-7)
        assert format_value("text") == "text"

    def test_ratio(self):
        assert ratio(1.0, 2.0) == 0.5
        assert ratio(1.0, 0.0) == math.inf
        assert ratio(0.0, 0.0) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert math.isnan(geometric_mean([]))


class TestTheory:
    def setup_method(self):
        self.params = derive_parameters(1.001, 1.0, 0.01, 8)

    def test_cps_bounds_delegate_to_params(self):
        assert theory.cps_skew_bound(self.params) == self.params.S
        assert (
            theory.cps_min_period_bound(self.params)
            == self.params.p_min_bound
        )
        assert (
            theory.cps_max_period_bound(self.params)
            == self.params.p_max_bound
        )
        assert theory.estimate_error_bound(self.params) == self.params.delta

    def test_apa_round_count(self):
        assert theory.apa_round_count(64.0, 1.0) == 12
        assert theory.apa_round_count(1.0, 2.0) == 0
        with pytest.raises(ValueError):
            theory.apa_round_count(1.0, 0.0)

    def test_apa_halving_bound(self):
        assert theory.apa_halving_bound(8.0, 3) == 1.0

    def test_lower_bound(self):
        assert theory.lower_bound_skew(0.9) == pytest.approx(0.6)

    def test_resilience_claims(self):
        claims = theory.ResilienceClaims(9)
        assert claims.signatures_optimal == 4
        assert claims.no_signatures == 2
        assert claims.lynch_welch == 2

    def test_summary_keys(self):
        summary = theory.summary(self.params)
        assert "S (skew bound)" in summary
        assert all(isinstance(v, float) for v in summary.values())


class TestRunner:
    def test_captures_protocol_errors(self):
        from repro.core.cps import assemble_cps_simulation
        from repro.sim.adversary import SilentAdversary

        params = derive_parameters(1.001, 1.0, 0.02, 6)
        simulation = assemble_cps_simulation(
            params,
            faulty=[3, 4],
            behavior=SilentAdversary(),
            discard_rule="f",
        )
        outcome = run_pulse_trial(simulation, 3)
        assert not outcome.live
        assert outcome.error is not None
        assert outcome.report is None

    def test_successful_trial(self):
        from repro.core.cps import assemble_cps_simulation

        params = derive_parameters(1.001, 1.0, 0.02, 6)
        outcome = run_pulse_trial(assemble_cps_simulation(params), 5)
        assert outcome.live
        assert outcome.report is not None
        assert outcome.report.pulses == 5
