"""Shared pytest configuration: pinned Hypothesis profiles.

Two profiles, selected by the ``HYPOTHESIS_PROFILE`` environment
variable (see ``docs/FUZZING.md``):

``tier1`` (default)
    Derandomized, database-free, no deadline — property tests in the
    tier-1 suite are exactly reproducible run-to-run and never flake on
    shared-runner timing.  Budgets stay small; the suite is a gate, not
    a search.

``deep``
    The nightly search tier: bigger budgets, seeded (non-derandomized)
    generation so successive nights explore different corners, and
    ``print_blob`` for reproduction lines in CI logs.

The fuzz driver (:mod:`repro.fuzz.driver`) pins every Hypothesis
setting explicitly in its own decorator, so profile selection changes
*test* behaviour only — ``repro fuzz run`` results are identical under
either profile.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "tier1",
    derandomize=True,
    database=None,
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)

settings.register_profile(
    "deep",
    derandomize=False,
    database=None,
    deadline=None,
    max_examples=200,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "tier1"))
