"""Tests for the general-network translation layer (Appendix A)."""

import networkx as nx
import pytest

from repro.core.topology import (
    LinkTiming,
    check_connectivity,
    circulant,
    required_connectivity,
    simulate_full_connectivity,
    uniform_timings,
)
from repro.sim.errors import ConfigurationError


class TestRequiredConnectivity:
    def test_with_signatures(self):
        assert required_connectivity(0) == 1
        assert required_connectivity(2) == 3

    def test_without_signatures(self):
        assert required_connectivity(2, with_signatures=False) == 5

    def test_negative_f(self):
        with pytest.raises(ConfigurationError):
            required_connectivity(-1)


class TestLinkTiming:
    def test_validation(self):
        LinkTiming(1.0, 0.1)
        with pytest.raises(ConfigurationError):
            LinkTiming(0.0, 0.0)
        with pytest.raises(ConfigurationError):
            LinkTiming(1.0, 1.5)


class TestCheckConnectivity:
    def test_complete_graph_passes(self):
        check_connectivity(nx.complete_graph(6), f=2)

    def test_cycle_fails_for_f2(self):
        with pytest.raises(ConfigurationError):
            check_connectivity(nx.cycle_graph(8), f=2)

    def test_cycle_passes_for_f1(self):
        check_connectivity(nx.cycle_graph(8), f=1)

    def test_signature_free_needs_more(self):
        graph = nx.cycle_graph(8)  # connectivity 2
        check_connectivity(graph, f=1, with_signatures=True)
        with pytest.raises(ConfigurationError):
            check_connectivity(graph, f=1, with_signatures=False)

    def test_too_few_nodes(self):
        with pytest.raises(ConfigurationError):
            check_connectivity(nx.complete_graph(3), f=2)


class TestSimulateFullConnectivity:
    def test_complete_graph_unbalanced_uncertainty(self):
        graph = nx.complete_graph(5)
        overlay = simulate_full_connectivity(
            graph, uniform_timings(graph, 1.0, 0.05), f=1, balance=False
        )
        # Direct links exist; f+1 = 2 disjoint paths include the direct
        # one and a 2-hop detour; the overlay worst case is the detour,
        # and without balancing the uncertainty is the full spread down
        # to the direct path's minimum.
        assert overlay.d_eff == pytest.approx(2.0)
        assert overlay.u_eff == pytest.approx(2.0 - 0.95)

    def test_balancing_shrinks_uncertainty(self):
        graph = nx.complete_graph(5)
        theta = 1.001
        overlay = simulate_full_connectivity(
            graph, uniform_timings(graph, 1.0, 0.05), f=1, theta=theta
        )
        assert overlay.d_eff == pytest.approx(2.0)
        # Per-path uncertainty (2 hops: 0.1) plus the drift cost of the
        # 1.0-long pad on the direct path.
        expected = max(0.1, 0.05 + 1.0 * (1 - 1 / theta))
        assert overlay.u_eff == pytest.approx(expected)
        assert overlay.u_eff < 0.2

    def test_cycle_f1_effective_delay_is_long_way_round(self):
        graph = nx.cycle_graph(6)
        overlay = simulate_full_connectivity(
            graph, uniform_timings(graph, 1.0, 0.01), f=1, balance=False
        )
        # Adjacent pairs: the two disjoint paths are the 1-hop link and
        # the 5-hop long way around the ring.
        assert overlay.d_eff == pytest.approx(5.0)
        # Adjacent pairs deliver in 1 hop minimum: big imbalance.
        assert overlay.u_eff == pytest.approx(5.0 - 0.99)
        assert overlay.imbalance_penalty() > 1.0

    def test_cycle_f1_balanced_is_feasible(self):
        graph = nx.cycle_graph(6)
        overlay = simulate_full_connectivity(
            graph, uniform_timings(graph, 1.0, 0.01), f=1, theta=1.0005
        )
        assert overlay.u_eff < overlay.d_eff / 2
        params = overlay.derive_parameters(theta=1.0005)
        params.check_feasible()

    def test_paths_are_vertex_disjoint_and_enough(self):
        graph = circulant(10, [1, 2])
        overlay = simulate_full_connectivity(
            graph, uniform_timings(graph, 1.0, 0.02), f=2, theta=1.0005
        )
        for (src, dst), paths in overlay.paths.items():
            assert len(paths) == 3
            interiors = [set(p.nodes[1:-1]) for p in paths]
            for i in range(len(interiors)):
                for j in range(i + 1, len(interiors)):
                    assert not (interiors[i] & interiors[j])

    def test_missing_timing_rejected(self):
        graph = nx.complete_graph(4)
        timings = uniform_timings(graph, 1.0, 0.01)
        timings.pop(next(iter(timings)))
        with pytest.raises(ConfigurationError):
            simulate_full_connectivity(graph, timings, f=1)

    def test_derive_parameters_for_overlay(self):
        graph = nx.complete_graph(6)
        overlay = simulate_full_connectivity(
            graph, uniform_timings(graph, 1.0, 0.05), f=2, theta=1.0005
        )
        params = overlay.derive_parameters(theta=1.0005)
        assert params.d == pytest.approx(overlay.d_eff)
        assert params.u == pytest.approx(overlay.u_eff)
        assert params.f == 2
        params.check_feasible()

    def test_overlay_cps_run_end_to_end(self):
        """The Appendix A pipeline: overlay parameters drive a real CPS
        run (on the virtual fully connected network) and the Theorem 17
        bounds hold with the lifted (d_eff, u_eff)."""
        from repro.analysis.metrics import check_liveness, max_skew
        from repro.core.cps import assemble_cps_simulation

        graph = nx.complete_graph(6)
        overlay = simulate_full_connectivity(
            graph, uniform_timings(graph, 1.0, 0.05), f=2, theta=1.0005
        )
        params = overlay.derive_parameters(theta=1.0005)
        simulation = assemble_cps_simulation(
            params, faulty=[4, 5], seed=2, trace=False
        )
        result = simulation.run(max_pulses=6)
        assert check_liveness(result.honest_pulses(), 6)
        assert max_skew(result.honest_pulses()) <= params.S + 1e-9

    def test_circulant_validation(self):
        with pytest.raises(ConfigurationError):
            circulant(2, [1])
        with pytest.raises(ConfigurationError):
            circulant(8, [])

    def test_unbalanced_overlay_often_infeasible(self):
        """The paper's warning, quantified: without path balancing the
        overlay uncertainty exceeds d/2 and no CPS parameters exist."""
        graph = nx.complete_graph(6)
        overlay = simulate_full_connectivity(
            graph, uniform_timings(graph, 1.0, 0.05), f=2, balance=False
        )
        with pytest.raises(ConfigurationError):
            overlay.derive_parameters(theta=1.0005)
