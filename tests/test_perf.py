"""Tests for the perf subsystem and the trace-level fast path."""

import json
import math
import time

import pytest

from repro import scenarios
from repro.analysis.runner import run_pulse_trial
from repro.core.cps import assemble_cps_simulation
from repro.core.params import derive_parameters
from repro.crypto.signatures import clear_verify_cache, verify_cache_stats
from repro.perf import (
    BenchResult,
    PerfProbe,
    available_cases,
    campaign_throughput,
    compare,
    load_baseline,
    load_results,
    write_baseline,
)
from repro.perf.probe import ProbeReading, machine_calibration
from repro.sim.trace import Trace, TraceLevel


class TestPerfProbe:
    def test_captures_wall_time_and_events(self):
        probe = PerfProbe(calibrate=False)
        with probe:
            time.sleep(0.01)
            probe.add_events(500)
        reading = probe.reading()
        assert reading.wall_seconds >= 0.01
        assert reading.events == 500
        assert reading.events_per_sec == pytest.approx(
            500 / reading.wall_seconds
        )

    def test_accumulates_across_blocks(self):
        probe = PerfProbe(calibrate=False)
        for _ in range(3):
            with probe:
                probe.add_events(10)
        assert probe.events == 30
        assert probe.reading().events == 30

    def test_not_reentrant(self):
        probe = PerfProbe(calibrate=False)
        with probe:
            with pytest.raises(RuntimeError):
                probe.__enter__()

    def test_peak_rss_captured_on_posix(self):
        reading = PerfProbe(calibrate=False).reading()
        assert reading.peak_rss_kib > 0

    def test_calibration_is_positive_and_normalizes(self):
        assert machine_calibration(spins=10_000, repeats=1) > 0
        reading = ProbeReading(
            wall_seconds=1.0,
            events=100,
            events_per_sec=100.0,
            peak_rss_kib=1,
            calibration=50.0,
        )
        assert reading.normalized_throughput == pytest.approx(2.0)
        uncalibrated = ProbeReading(
            wall_seconds=1.0,
            events=100,
            events_per_sec=100.0,
            peak_rss_kib=1,
            calibration=0.0,
        )
        assert uncalibrated.normalized_throughput is None


def bench(name, events=1000, wall=2.0, calibration=100.0, **meta):
    return BenchResult(
        name=name,
        events=events,
        wall_seconds=wall,
        events_per_sec=events / wall,
        peak_rss_kib=4096,
        calibration=calibration,
        created="2026-01-01T00:00:00",
        meta=meta,
    )


class TestBenchResult:
    def test_json_round_trip(self):
        original = bench("alpha", trials=12)
        back = BenchResult.from_json_dict(
            json.loads(json.dumps(original.to_json_dict()))
        )
        assert back == original

    def test_write_and_load_file(self, tmp_path):
        result = bench("alpha")
        path = result.write(str(tmp_path))
        assert path.endswith("BENCH_alpha.json")
        assert BenchResult.load(path) == result

    def test_load_results_scans_directory(self, tmp_path):
        bench("alpha").write(str(tmp_path))
        bench("beta").write(str(tmp_path))
        (tmp_path / "unrelated.json").write_text("{}")
        results = load_results(str(tmp_path))
        assert sorted(results) == ["alpha", "beta"]
        assert load_results(str(tmp_path / "missing")) == {}

    def test_normalized_throughput(self):
        assert bench("a").normalized_throughput == pytest.approx(5.0)
        assert bench("a", calibration=0.0).normalized_throughput is None


class TestCompare:
    def test_improvement_within_tolerance_regression(self):
        baseline = {
            "up": bench("up"),
            "flat": bench("flat"),
            "down": bench("down"),
        }
        current = {
            "up": bench("up", events=2000),  # 2.0x
            "flat": bench("flat", events=800),  # 0.8x, within 0.35
            "down": bench("down", events=500),  # 0.5x, regression
        }
        comparison = compare(baseline, current, tolerance=0.35)
        by_name = {v.name: v for v in comparison.verdicts}
        assert by_name["up"].status == "improvement"
        assert by_name["flat"].status == "within-tolerance"
        assert by_name["down"].status == "regression"
        assert by_name["down"].ratio == pytest.approx(0.5)
        assert not comparison.ok
        assert "FAIL" in comparison.summary()

    def test_all_good_passes(self):
        baseline = {"a": bench("a")}
        current = {"a": bench("a", events=990)}  # 1% drop
        comparison = compare(baseline, current, tolerance=0.35)
        assert comparison.ok
        assert "PASS" in comparison.summary()

    def test_missing_case_fails_new_case_passes(self):
        comparison = compare(
            {"gone": bench("gone")}, {"fresh": bench("fresh")}
        )
        by_name = {v.name: v for v in comparison.verdicts}
        assert by_name["gone"].status == "missing"
        assert by_name["fresh"].status == "new"
        assert not comparison.ok
        assert compare({}, {"fresh": bench("fresh")}).ok

    def test_normalization_cancels_machine_speed(self):
        # Same workload, but the "current" machine is 3x faster across
        # the board: raw throughput tripled AND calibration tripled.
        baseline = {"a": bench("a", events=1000, calibration=100.0)}
        current = {"a": bench("a", events=3000, calibration=300.0)}
        verdict = compare(baseline, current).verdicts[0]
        assert verdict.ratio == pytest.approx(1.0)
        assert verdict.ok

    def test_raw_fallback_without_calibration(self):
        baseline = {"a": bench("a", calibration=0.0)}
        current = {"a": bench("a", events=400, calibration=0.0)}
        verdict = compare(baseline, current, tolerance=0.35).verdicts[0]
        assert verdict.status == "regression"
        assert verdict.baseline_value == pytest.approx(500.0)

    def test_tolerance_validated(self):
        with pytest.raises(ValueError):
            compare({}, {}, tolerance=1.5)


class TestBaselineFiles:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "nested" / "baseline.json")
        write_baseline(
            path, {"a": bench("a")}, notes="why", meta={"host": "ci"}
        )
        baseline = load_baseline(path)
        assert baseline.cases["a"] == bench("a")
        assert baseline.notes == "why"
        assert baseline.meta == {"host": "ci"}
        assert baseline.created


class TestTraceLevels:
    def test_coerce(self):
        assert TraceLevel.coerce(True) is TraceLevel.FULL
        assert TraceLevel.coerce(False) is TraceLevel.NONE
        assert TraceLevel.coerce("pulses") is TraceLevel.PULSES
        assert TraceLevel.coerce(TraceLevel.FULL) is TraceLevel.FULL
        with pytest.raises(ValueError):
            TraceLevel.coerce("verbose")

    def test_levels_gate_record_kinds(self):
        pulses_only = Trace(level="pulses")
        pulses_only.send(
            time=0.0, src=0, dst=1, payload="m", delay=1.0, src_honest=True
        )
        pulses_only.delivery(time=1.0, src=0, dst=1, payload="m")
        pulses_only.timer(time=1.0, node=0, tag="t", local_time=1.0)
        pulses_only.protocol(time=1.0, node=0, kind="k", details=None)
        assert len(pulses_only) == 0
        pulses_only.pulse(time=1.0, node=0, index=1, local_time=1.0)
        assert len(pulses_only) == 1
        assert pulses_only.enabled

    def test_trace_level_none_matches_full_pulses(self):
        """The fast path is semantics-preserving: pulse times are
        byte-identical whether or not records are allocated."""
        params = derive_parameters(1.001, 1.0, 0.02, 6)
        faulty = list(range(6 - params.f, 6))

        def run(level):
            simulation = assemble_cps_simulation(
                params,
                faulty=faulty,
                behavior=scenarios.create("adversary", "mimic-split", params),
                seed=11,
                clock_style="extreme",
                trace=level,
            )
            outcome = run_pulse_trial(simulation, 12, warmup=3)
            assert outcome.result is not None, outcome.error
            return outcome.result

        full = run("full")
        none = run("none")
        pulses = run("pulses")
        assert none.pulses == full.pulses
        assert pulses.pulses == full.pulses
        assert none.events_processed == full.events_processed
        assert none.end_time == full.end_time
        assert len(none.trace) == 0
        assert len(full.trace) > len(pulses.trace) > 0


class TestVerifyCache:
    def test_hits_accumulate(self):
        from repro.crypto.pki import PublicKeyInfrastructure
        from repro.crypto.signatures import verify

        clear_verify_cache()
        signature = PublicKeyInfrastructure(2).key_pair(0).sign("m")
        assert verify(signature, 0, "m")
        assert verify(signature, 0, "m")
        assert not verify(signature, 1, "m")
        stats = verify_cache_stats()
        assert stats.hits >= 1
        clear_verify_cache()
        assert verify_cache_stats().hits == 0


class TestPerfCases:
    def test_registry_names(self):
        assert "e5-stress" in available_cases()
        assert "telemetry-overhead" in available_cases()

    def test_queue_churn_runs(self):
        from repro.perf import run_case

        result = run_case("queue-churn", scale="quick", repeats=1)
        assert result.events == 100_000
        assert result.events_per_sec > 0
        assert result.normalized_throughput is not None

    def test_meta_reports_verify_cache_stats(self):
        from repro.perf import run_case

        result = run_case("queue-churn", scale="quick", repeats=1)
        cache = result.meta["verify_cache"]
        assert set(cache) == {"hits", "misses", "hit_rate"}
        assert cache["hits"] >= 0 and cache["misses"] >= 0
        # The round trip through BENCH_*.json keeps the stats.
        restored = BenchResult.from_json_dict(result.to_json_dict())
        assert restored.meta["verify_cache"] == cache

    def test_telemetry_overhead_case_asserts_identity(self):
        from repro.perf import run_case

        result = run_case(
            "telemetry-overhead", scale="quick", repeats=1
        )
        meta = result.meta
        assert meta["bare_seconds"] > 0
        assert meta["instrumented_seconds"] > 0
        assert "overhead_fraction" in meta
        assert meta["dispatched"] == result.events // 2
        cache = meta["verify_cache"]
        assert cache["hits"] + cache["misses"] > 0


class TestCampaignThroughput:
    def test_aggregates_executed_trials(self):
        from repro.campaigns import execute_campaign
        from repro.campaigns.spec import (
            CampaignSpec,
            MeasurementSpec,
            ScenarioSpec,
        )

        spec = CampaignSpec(
            name="PERF-T",
            scenarios=(
                ScenarioSpec(
                    builder="cps-skew",
                    base={"d": 1.0, "seed": 3, "adversary": "silent"},
                    cases={"*": ({"n": 5, "u": 0.01, "theta": 1.001},)},
                ),
            ),
            measurements={"*": MeasurementSpec(pulses=4, warmup=1)},
        )
        run = execute_campaign(spec, scale="quick")
        assert run.failed == 0
        summary = campaign_throughput(run)
        assert summary["measured"] == 1
        assert summary["events"] > 0
        assert summary["events_per_sec"] > 0
        assert not math.isnan(summary["duration"])
        assert summary["cases"][0]["builder"] == "cps-skew"
