"""Randomized robustness sweep: Theorem 17 must hold for *every*
model-compliant configuration the generator can produce.

This is the closest thing to an executable proof check we can run: random
system sizes, fault sets, clock ensembles, delay policies, and adversary
choices — every draw must keep skew, periods, and liveness within the
derived bounds.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import (
    check_liveness,
    max_period,
    max_skew,
    min_period,
)
from repro.core.attacks import (
    CpsEquivocatingSubsetAttack,
    CpsMimicDealerAttack,
)
from repro.core.cps import assemble_cps_simulation
from repro.core.params import derive_parameters
from repro.sim.adversary import ReplayAdversary, SilentAdversary
from repro.sim.clocks import HardwareClock
from repro.sim.network import (
    BiasedPartitionDelayPolicy,
    ConstantFractionDelayPolicy,
    MaximumDelayPolicy,
    RandomDelayPolicy,
    SkewingDelayPolicy,
)

PULSES = 8


def make_adversary(kind, params, group):
    if kind == "silent":
        return SilentAdversary()
    if kind == "mimic":
        return CpsMimicDealerAttack(params, group)
    if kind == "subset":
        return CpsEquivocatingSubsetAttack(params)
    return ReplayAdversary(seed=1)


def make_policy(kind, group, seed):
    if kind == "max":
        return MaximumDelayPolicy()
    if kind == "half":
        return ConstantFractionDelayPolicy(0.5)
    if kind == "random":
        return RandomDelayPolicy(seed=seed)
    if kind == "biased":
        return BiasedPartitionDelayPolicy(group)
    return SkewingDelayPolicy(group)


def make_clocks(params, rng):
    clocks = []
    for _ in range(params.n):
        style = rng.randrange(3)
        if style == 0:
            clocks.append(
                HardwareClock.constant_rate(
                    rng.uniform(1.0, params.theta),
                    offset=rng.uniform(0.0, params.S),
                    theta=params.theta,
                )
            )
        elif style == 1:
            clocks.append(
                HardwareClock.random_drift(
                    rng,
                    params.theta,
                    offset=rng.uniform(0.0, params.S),
                    horizon=60.0 * params.d,
                    segment_length=3.0 * params.d,
                )
            )
        else:
            clocks.append(
                HardwareClock.fast_then_shifted(
                    params.theta,
                    shift=rng.uniform(0.0, params.S / 2),
                    offset=rng.uniform(0.0, params.S / 2),
                )
            )
    return clocks


@settings(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(min_value=4, max_value=10),
    theta=st.sampled_from([1.0005, 1.001, 1.005]),
    u_fraction=st.sampled_from([0.005, 0.02, 0.1]),
    adversary_kind=st.sampled_from(["silent", "mimic", "subset", "replay"]),
    policy_kind=st.sampled_from(["max", "half", "random", "biased", "skew"]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_theorem17_holds_for_random_configurations(
    n, theta, u_fraction, adversary_kind, policy_kind, seed
):
    rng = random.Random(seed)
    params = derive_parameters(theta, 1.0, u_fraction, n)
    f_actual = rng.randint(0, params.f)
    faulty = sorted(rng.sample(range(n), f_actual))
    honest = [v for v in range(n) if v not in faulty]
    group = [v for v in honest if rng.random() < 0.5] or honest[:1]
    simulation = assemble_cps_simulation(
        params,
        clocks=make_clocks(params, rng),
        faulty=faulty,
        behavior=make_adversary(adversary_kind, params, group),
        delay_policy=make_policy(policy_kind, group, seed),
        seed=seed,
        trace=False,
    )
    result = simulation.run(max_pulses=PULSES)
    pulses = result.honest_pulses()
    assert check_liveness(pulses, PULSES), (
        f"liveness broken: n={n} faulty={faulty} adversary={adversary_kind}"
    )
    assert max_skew(pulses) <= params.S + 1e-9
    assert min_period(pulses) >= params.p_min_bound - 1e-9
    assert max_period(pulses) <= params.p_max_bound + 1e-9


@pytest.mark.parametrize("seed", range(5))
def test_larger_system_spot_checks(seed):
    """n up to 14 at full resilience with the strongest attack mix."""
    rng = random.Random(seed)
    n = rng.choice([12, 13, 14])
    params = derive_parameters(1.001, 1.0, 0.02, n)
    faulty = list(range(n - params.f, n))
    group = [v for v in range(n) if v % 2 == 0]
    simulation = assemble_cps_simulation(
        params,
        faulty=faulty,
        behavior=CpsMimicDealerAttack(params, group),
        delay_policy=SkewingDelayPolicy(group),
        seed=seed,
        clock_style="extreme",
        trace=False,
    )
    result = simulation.run(max_pulses=8)
    pulses = result.honest_pulses()
    assert check_liveness(pulses, 8)
    assert max_skew(pulses) <= params.S + 1e-9


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports(self):
        import repro.analysis as analysis
        import repro.baselines as baselines
        import repro.core as core
        import repro.crypto as crypto
        import repro.sim as sim
        import repro.sync as sync

        for module in (analysis, baselines, core, crypto, sim, sync):
            for name in module.__all__:
                assert getattr(module, name) is not None

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
