"""Hypothesis stateful model test for the slab-heap event queue.

PR 3 rewrote :class:`~repro.sim.events.EventQueue` as a tuple-keyed
heap over a slab dict (O(1) cancellation, lazy heap cleanup, no
Python-level ``__lt__`` dispatch).  This machine drives the real queue
and a naive sorted-list model through interleaved push / pop /
pop_entry / cancel / reschedule / peek sequences and demands they never
disagree — covering in particular:

* the ``(time, priority, seq)`` tuple-key tie-break: equal times and
  equal priorities must pop in insertion order;
* O(1) cancellation semantics: cancelled entries are dead immediately,
  double-cancels and cancel-after-pop report ``False``, and lazily
  discarded heap keys never resurrect an event;
* reschedule (cancel + re-push) — the pattern the simulator's timer
  logic relies on.

Times are drawn from a small discrete pool *and* a continuous range so
collisions (the tie-break path) occur in nearly every run.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.sim.events import (
    PRIORITY_ADVERSARY,
    PRIORITY_DELIVERY,
    PRIORITY_TIMER,
    EventQueue,
)

#: Few distinct times -> frequent (time, priority) collisions.
COLLIDING_TIMES = st.sampled_from([0.0, 1.0, 2.5, 7.0])
CONTINUOUS_TIMES = st.floats(
    min_value=0.0,
    max_value=100.0,
    allow_nan=False,
    allow_infinity=False,
)
TIMES = COLLIDING_TIMES | CONTINUOUS_TIMES
PRIORITIES = st.sampled_from(
    [PRIORITY_TIMER, PRIORITY_DELIVERY, PRIORITY_ADVERSARY]
)


class EventQueueMachine(RuleBasedStateMachine):
    """Drive EventQueue and a naive model through the same operations."""

    handles = Bundle("handles")

    def __init__(self):
        super().__init__()
        self.queue = EventQueue()
        # handle -> (time, priority, handle, payload); live entries only.
        self.model = {}
        self.next_payload = 0

    # -- operations -----------------------------------------------------

    @rule(target=handles, time=TIMES, priority=PRIORITIES)
    def push(self, time, priority):
        payload = f"event-{self.next_payload}"
        self.next_payload += 1
        handle = self.queue.push(time, priority, payload)
        assert handle not in self.model, "handles must be unique"
        self.model[handle] = (time, priority, handle, payload)
        return handle

    @rule()
    def pop(self):
        expected = min(self.model.values()) if self.model else None
        popped = self.queue.pop()
        if expected is None:
            assert popped is None
        else:
            time, _priority, handle, payload = expected
            assert popped == (time, payload)
            del self.model[handle]

    @rule()
    def pop_entry(self):
        expected = min(self.model.values()) if self.model else None
        popped = self.queue.pop_entry()
        if expected is None:
            assert popped is None
        else:
            time, priority, handle, payload = expected
            assert popped == (time, priority, payload)
            del self.model[handle]

    @rule(handle=handles)
    def cancel(self, handle):
        was_live = handle in self.model
        assert self.queue.cancel(handle) is was_live
        self.model.pop(handle, None)

    @rule(handle=handles)
    def cancel_twice_is_false(self, handle):
        self.queue.cancel(handle)
        self.model.pop(handle, None)
        assert self.queue.cancel(handle) is False

    @rule(target=handles, handle=handles, time=TIMES, priority=PRIORITIES)
    def reschedule(self, handle, time, priority):
        """Cancel + re-push, as the simulator reschedules timers."""
        was_live = handle in self.model
        assert self.queue.cancel(handle) is was_live
        entry = self.model.pop(handle, None)
        payload = entry[3] if entry else f"event-{self.next_payload}"
        self.next_payload += 1
        new_handle = self.queue.push(time, priority, payload)
        self.model[new_handle] = (time, priority, new_handle, payload)
        return new_handle

    # -- invariants -----------------------------------------------------

    @invariant()
    def sizes_agree(self):
        assert len(self.queue) == len(self.model)
        assert bool(self.queue) is bool(self.model)

    @invariant()
    def peek_matches_model_minimum(self):
        expected = min(self.model.values())[0] if self.model else None
        assert self.queue.peek_time() == expected


TestEventQueueModel = EventQueueMachine.TestCase
TestEventQueueModel.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)


class TestTieBreakExplicit:
    """Deterministic companions to the stateful machine."""

    def test_equal_time_orders_by_priority_then_insertion(self):
        queue = EventQueue()
        queue.push(1.0, PRIORITY_DELIVERY, "delivery-1")
        queue.push(1.0, PRIORITY_TIMER, "timer-1")
        queue.push(1.0, PRIORITY_DELIVERY, "delivery-2")
        queue.push(1.0, PRIORITY_ADVERSARY, "adversary-1")
        queue.push(1.0, PRIORITY_TIMER, "timer-2")
        order = [queue.pop()[1] for _ in range(5)]
        assert order == [
            "timer-1",
            "timer-2",
            "delivery-1",
            "delivery-2",
            "adversary-1",
        ]

    def test_cancelled_head_is_skipped_lazily(self):
        queue = EventQueue()
        first = queue.push(1.0, PRIORITY_TIMER, "dead")
        queue.push(2.0, PRIORITY_TIMER, "alive")
        assert queue.cancel(first)
        assert queue.peek_time() == 2.0
        assert queue.pop() == (2.0, "alive")
        assert queue.pop() is None
