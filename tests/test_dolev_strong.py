"""Tests for Dolev-Strong authenticated broadcast (baseline substrate)."""

import pytest

from repro.sync.crusader import BOT
from repro.sync.dolev_strong import DolevStrongNode, DsMessage, ds_tag
from repro.sync.round_model import RoundMessage, SyncAdversary, SynchronousNetwork


def run_ds(n, f, dealer, faulty=(), adversary=None, input_value="v"):
    nodes = {
        v: DolevStrongNode(dealer, input_value=input_value)
        for v in range(n)
        if v not in set(faulty)
    }
    network = SynchronousNetwork(nodes, n, f, faulty, adversary)
    outputs = network.run(f + 1)
    return outputs, nodes


class TestHonestDealer:
    @pytest.mark.parametrize("n,f", [(4, 1), (5, 2), (7, 3)])
    def test_agreement_and_validity(self, n, f):
        faulty = list(range(n - f, n))
        outputs, _ = run_ds(n, f, dealer=0, faulty=faulty)
        assert all(output == "v" for output in outputs.values())

    def test_single_round_when_f_zero(self):
        outputs, _ = run_ds(3, 0, dealer=1)
        assert all(output == "v" for output in outputs.values())


class EquivocatingDsDealer(SyncAdversary):
    """Faulty dealer sends value 'a' to half the nodes, 'b' to the rest."""

    def __init__(self, dealer):
        self.dealer = dealer

    def round_messages(self, ctx, round_no, honest_messages):
        if round_no != 1:
            return []
        messages = []
        for index, dst in enumerate(sorted(ctx.honest)):
            value = "a" if index % 2 == 0 else "b"
            message = DsMessage(
                "ds-standalone",
                self.dealer,
                value,
                (ctx.sign_as(self.dealer, ds_tag("ds-standalone", value)),),
            )
            messages.append(RoundMessage(self.dealer, dst, message))
        return messages


class TestFaultyDealer:
    @pytest.mark.parametrize("n,f", [(4, 1), (5, 2)])
    def test_equivocation_yields_agreement_on_bot(self, n, f):
        dealer = n - 1
        faulty = [dealer] + list(range(n - f, n - 1))
        outputs, _ = run_ds(
            n, f, dealer, faulty=faulty, adversary=EquivocatingDsDealer(dealer)
        )
        values = set(outputs.values())
        # All honest agree — on ⊥ (both chains relayed to everyone).
        assert len(values) == 1
        assert values == {BOT}

    def test_silent_dealer_yields_bot(self):
        outputs, _ = run_ds(4, 1, dealer=3, faulty=[3])
        assert all(output is BOT for output in outputs.values())


class TestChainValidation:
    def test_chain_needs_dealer_first(self):
        from repro.crypto.pki import PublicKeyInfrastructure

        pki = PublicKeyInfrastructure(3)
        message = DsMessage(
            "i", 0, "v", (pki.key_pair(1).sign(ds_tag("i", "v")),)
        )
        assert not message.is_valid_at_round(1)

    def test_chain_needs_distinct_signers(self):
        from repro.crypto.pki import PublicKeyInfrastructure

        pki = PublicKeyInfrastructure(3)
        sig = pki.key_pair(0).sign(ds_tag("i", "v"))
        message = DsMessage("i", 0, "v", (sig, sig))
        assert not message.is_valid_at_round(2)

    def test_chain_length_must_cover_round(self):
        from repro.crypto.pki import PublicKeyInfrastructure

        pki = PublicKeyInfrastructure(3)
        sig = pki.key_pair(0).sign(ds_tag("i", "v"))
        message = DsMessage("i", 0, "v", (sig,))
        assert message.is_valid_at_round(1)
        assert not message.is_valid_at_round(2)

    def test_signatures_must_bind_same_value(self):
        from repro.crypto.pki import PublicKeyInfrastructure

        pki = PublicKeyInfrastructure(3)
        message = DsMessage(
            "i",
            0,
            "v",
            (
                pki.key_pair(0).sign(ds_tag("i", "v")),
                pki.key_pair(1).sign(ds_tag("i", "OTHER")),
            ),
        )
        assert not message.is_valid_at_round(2)
