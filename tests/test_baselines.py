"""Tests for the Lynch-Welch, signed-relay, and chain-relay baselines."""

import pytest

from repro.analysis.metrics import (
    check_liveness,
    max_skew,
    skew_trajectory,
)
from repro.baselines.chain_relay import (
    ChainMessage,
    ChainStretchAttack,
    build_chain_simulation,
    chain_tag,
    derive_chain_parameters,
)
from repro.baselines.lynch_welch import (
    LwTimingAttack,
    build_lw_simulation,
    derive_lw_parameters,
    lw_max_faults,
)
from repro.baselines.srikanth_toueg import (
    StRushAttack,
    build_st_simulation,
    derive_st_parameters,
)
from repro.crypto.pki import PublicKeyInfrastructure
from repro.sim.clocks import HardwareClock
from repro.sim.errors import ConfigurationError
from repro.sim.network import RandomDelayPolicy, SkewingDelayPolicy

PULSES = 10


def group_a(n):
    return [v for v in range(n) if v % 2 == 0]


def extreme_clocks(n, theta, offset):
    return [
        HardwareClock.constant_rate(
            1.0 if v % 2 == 0 else theta,
            offset=0.0 if v % 2 == 0 else offset,
            theta=theta,
        )
        for v in range(n)
    ]


class TestLynchWelch:
    def test_max_faults(self):
        assert lw_max_faults(3) == 0
        assert lw_max_faults(4) == 1
        assert lw_max_faults(7) == 2
        assert lw_max_faults(10) == 3

    def test_fault_free_bounds(self):
        params = derive_lw_parameters(1.001, 1.0, 0.02, 7)
        simulation = build_lw_simulation(
            params, delay_policy=RandomDelayPolicy(seed=2), seed=2
        )
        result = simulation.run(max_pulses=PULSES)
        honest = result.honest_pulses()
        assert check_liveness(honest, PULSES)
        assert max_skew(honest) <= params.S + 1e-9

    def test_tolerates_f_below_n_third(self):
        n = 7
        f = lw_max_faults(n)
        params = derive_lw_parameters(1.001, 1.0, 0.02, n, f=f)
        simulation = build_lw_simulation(
            params,
            clocks=extreme_clocks(n, params.theta, params.S),
            faulty=list(range(n - f, n)),
            behavior=LwTimingAttack(params, group_a(n)),
            delay_policy=SkewingDelayPolicy(group_a(n)),
        )
        result = simulation.run(max_pulses=PULSES)
        honest = result.honest_pulses()
        assert check_liveness(honest, PULSES)
        assert max_skew(honest) <= params.S + 1e-9

    def test_breaks_beyond_n_third(self):
        """At f = ceil(n/2)-1 >= n/3 the timing-split attack prevents
        contraction: the skew exceeds the bound that holds for CPS."""
        n = 9
        f = 4
        params = derive_lw_parameters(1.001, 1.0, 0.02, n, f=f)
        simulation = build_lw_simulation(
            params,
            clocks=extreme_clocks(n, params.theta, params.S),
            faulty=list(range(n - f, n)),
            behavior=LwTimingAttack(params, group_a(n)),
            delay_policy=SkewingDelayPolicy(group_a(n)),
        )
        result = simulation.run(max_pulses=40)
        trajectory = skew_trajectory(result.honest_pulses())
        assert max(trajectory[8:]) > params.S

    def test_contrast_cps_survives_same_setting(self):
        from repro.core.attacks import CpsMimicDealerAttack
        from repro.core.cps import assemble_cps_simulation
        from repro.core.params import derive_parameters

        n, f = 9, 4
        params = derive_parameters(1.001, 1.0, 0.02, n, f=f)
        simulation = assemble_cps_simulation(
            params,
            clocks=extreme_clocks(n, params.theta, params.S),
            faulty=list(range(n - f, n)),
            behavior=CpsMimicDealerAttack(params, group_a(n)),
            delay_policy=SkewingDelayPolicy(group_a(n)),
        )
        result = simulation.run(max_pulses=40)
        assert max_skew(result.honest_pulses()) <= params.S + 1e-9


class TestSrikanthToueg:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            derive_st_parameters(1.001, 1.0, 0.02, 5, f=4)

    def test_fault_free_liveness_and_theta_d_skew(self):
        params = derive_st_parameters(1.001, 1.0, 0.02, 6)
        simulation = build_st_simulation(params, seed=3)
        result = simulation.run(max_pulses=PULSES)
        honest = result.honest_pulses()
        assert check_liveness(honest, PULSES)
        # Relay propagation bounds the skew by ~d (plus slack).
        assert max_skew(honest) <= params.d + params.initial_skew + 1e-9

    def test_rush_attack_keeps_liveness_but_skew_order_d(self):
        n = 6
        params = derive_st_parameters(1.001, 1.0, 0.02, n)
        faulty = list(range(n - params.f, n))
        simulation = build_st_simulation(
            params,
            faulty=faulty,
            behavior=StRushAttack(params),
            delay_policy=SkewingDelayPolicy(group_a(n)),
            seed=3,
        )
        result = simulation.run(max_pulses=PULSES)
        honest = result.honest_pulses()
        assert check_liveness(honest, PULSES)
        measured = max_skew(honest)
        assert measured <= params.d + params.initial_skew + 1e-9
        # The point of E6: the skew is Theta(d), nowhere near u.
        assert measured > 10 * params.u

    def test_skew_does_not_vanish_with_u(self):
        """Shrinking u does not help a threshold-relay pulser."""
        results = []
        for u in (0.02, 0.002):
            params = derive_st_parameters(1.001, 1.0, u, 6)
            faulty = [4, 5]
            simulation = build_st_simulation(
                params,
                faulty=faulty,
                behavior=StRushAttack(params),
                delay_policy=SkewingDelayPolicy(group_a(6)),
                seed=3,
            )
            result = simulation.run(max_pulses=PULSES)
            results.append(max_skew(result.honest_pulses(), skip=2))
        assert results[1] > results[0] / 4  # basically unchanged


class TestChainRelay:
    def test_chain_validation(self):
        pki = PublicKeyInfrastructure(4)
        good = ChainMessage(
            1,
            (
                pki.key_pair(0).sign(chain_tag(1)),
                pki.key_pair(1).sign(chain_tag(1)),
            ),
        )
        assert good.is_valid(3)
        assert not good.is_valid(1)  # too long
        duplicated = ChainMessage(
            1,
            (
                pki.key_pair(0).sign(chain_tag(1)),
                pki.key_pair(0).sign(chain_tag(1)),
            ),
        )
        assert not duplicated.is_valid(3)
        wrong_round = ChainMessage(
            2, (pki.key_pair(0).sign(chain_tag(1)),)
        )
        assert not wrong_round.is_valid(3)

    def test_fault_free_liveness(self):
        params = derive_chain_parameters(1.001, 1.0, 0.02, 6)
        simulation = build_chain_simulation(params, seed=4)
        result = simulation.run(max_pulses=6)
        assert check_liveness(result.honest_pulses(), 6)

    def test_stretch_attack_within_theory_bound(self):
        n = 7
        params = derive_chain_parameters(1.001, 1.0, 0.02, n)
        faulty = list(range(n - params.f, n))
        simulation = build_chain_simulation(
            params,
            faulty=faulty,
            behavior=ChainStretchAttack(params),
            seed=4,
        )
        result = simulation.run(max_pulses=8)
        honest = result.honest_pulses()
        assert check_liveness(honest, 8)
        assert max_skew(honest, skip=2) <= params.skew_bound + 1e-9

    def test_skew_grows_with_f(self):
        """The Theta(f (u + (theta-1) d)) scaling of experiment E6."""
        measured = {}
        for n in (5, 13):
            params = derive_chain_parameters(1.0005, 1.0, 0.02, n)
            faulty = list(range(n - params.f, n))
            simulation = build_chain_simulation(
                params,
                faulty=faulty,
                behavior=ChainStretchAttack(params),
                seed=4,
            )
            result = simulation.run(max_pulses=8)
            measured[n] = max_skew(result.honest_pulses(), skip=2)
        assert measured[13] > 1.8 * measured[5]
