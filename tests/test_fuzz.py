"""Adversary/schedule fuzzer: strategies, search, shrinking, corpus.

The satellite guarantees under test:

* the strategy spaces synthesize well-formed, registry-keyed payloads
  (delay policies inside the ``d``/``u`` envelope, adversaries from the
  registry's CPS-capable primitives, churn schedules within the ``f``
  budget);
* the sanity gate: fuzzing the known-bad region (E8's rushing-echo
  with ``u_tilde >> u``) *finds* a violation and shrinks it to a
  fixture no larger than the hand-written broken fixture, and
  ``repro check fixture`` confirms the monitors fire on it;
* a default-budget search over the valid space finds nothing;
* fixtures are content-hashed, byte-stable on disk, idempotently
  promotable into the scenario registry, and replay deterministically
  — byte-identical verdicts and pulse streams across invocations and
  across ``PULSES`` vs ``FULL`` trace levels;
* the conformance engine's ``fuzz`` mode judges promoted fixtures
  against their recorded expectation;
* the ``repro fuzz run/list/replay/promote`` CLI round-trips.
"""

import json
import os

import pytest
from hypothesis import given

from repro.checks import check_scenario
from repro.checks.fixtures import BROKEN_N, BROKEN_PULSES
from repro.cli import main
from repro.fuzz import (
    FIXTURE_SCHEMA,
    available_strategies,
    fixture_id,
    fixture_path,
    known_bad_cases,
    list_fixtures,
    load_fixture,
    load_promoted,
    make_fixture,
    promote_fixture,
    register_fixture,
    replay_fixture,
    run_fuzz_case,
    save_fixture,
    search,
    valid_churn_cases,
    valid_cps_cases,
    verdict_payload,
)
from repro.fuzz.corpus import MalformedFixtureError
from repro.fuzz.driver import UnknownStrategyError, render_fuzz_report
from repro.fuzz.strategies import CPS_ADVERSARIES, CPS_DELAYS
from repro.scenarios import REGISTRY
from repro.scenarios.registry import ScenarioRegistry


@pytest.fixture(scope="module")
def known_bad_report():
    """One shrunk counterexample, shared by every test that needs it."""
    return search("known-bad", budget=25, seed=0)


# ----------------------------------------------------------------------
# Strategy spaces synthesize well-formed payloads
# ----------------------------------------------------------------------


class TestStrategies:
    @given(payload=valid_cps_cases())
    def test_cps_payloads_are_registry_keyed(self, payload):
        case = payload["case"]
        assert set(payload) == {"case", "pulses", "seed"}
        assert REGISTRY.has("adversary", case["adversary"])
        assert REGISTRY.has("delay", case["delay"])
        assert REGISTRY.has("drift", case["drift"])
        assert "cps" in REGISTRY.get("adversary", case["adversary"]).tags
        assert 4 <= case["n"] <= 8
        assert 1.0 <= case["theta"] <= 1.005
        assert 0.005 <= case["u"] <= 0.05 < case["d"] == 1.0
        assert payload["pulses"] >= 4

    @given(payload=valid_churn_cases())
    def test_churn_payloads_fit_the_fault_budget(self, payload):
        case = payload["case"]
        assert REGISTRY.has("churn", case["churn"])
        # The strategy pre-validates feasibility: building the schedule
        # at the case's (n, f) must not raise.
        from repro.core.params import derive_parameters

        params = derive_parameters(
            case["theta"], case["d"], case["u"], case["n"]
        )
        schedule = REGISTRY.create(
            "churn", case["churn"], params, **case.get("churn_params", {})
        )
        schedule.validate(params.n, params.f)

    @given(payload=known_bad_cases())
    def test_known_bad_payloads_violate_the_envelope(self, payload):
        case = payload["case"]
        assert case["adversary"] == "rushing-echo"
        assert case["delay"] == "fast-to-faulty"
        assert case["u_tilde"] > case["u"]

    def test_strategy_catalog_matches_registry_capabilities(self):
        for key in CPS_ADVERSARIES:
            assert "cps" in REGISTRY.get("adversary", key).tags, key
        for key in CPS_DELAYS:
            assert REGISTRY.has("delay", key), key
        assert set(available_strategies()) == {
            "valid", "cps", "churn", "known-bad",
        }


# ----------------------------------------------------------------------
# The sanity gate: the known-bad region is found and shrinks
# ----------------------------------------------------------------------


class TestSanityGate:
    def test_known_bad_search_finds_and_shrinks(self, known_bad_report):
        report = known_bad_report
        assert report.found and report.ok
        fixture = report.counterexample
        assert fixture["expect"] == "violation"
        assert fixture["origin"] == "shrunk"
        assert fixture["summary"]["violations"]
        # No larger than the hand-written broken fixture (n=6, 12
        # pulses): shrinking found an equal-or-smaller reproduction.
        assert fixture["case"]["n"] <= BROKEN_N
        assert fixture["pulses"] <= BROKEN_PULSES

    def test_shrunk_fixture_fires_monitors_on_replay(
        self, known_bad_report
    ):
        run = replay_fixture(known_bad_report.counterexample)
        assert not run.ok
        assert any(v.monitor == "skew" for v in run.verdicts if not v.ok)

    def test_check_fixture_cli_confirms_the_monitors_fire(
        self, known_bad_report, tmp_path
    ):
        path = save_fixture(known_bad_report.counterexample, str(tmp_path))
        assert main(["check", "fixture", "--fixture", path]) == 0

    def test_render_names_the_counterexample(self, known_bad_report):
        text = render_fuzz_report(known_bad_report)
        assert "COUNTEREXAMPLE" in text
        assert known_bad_report.counterexample["fixture_id"] in text
        assert "matches" in text


# ----------------------------------------------------------------------
# The valid space stays clean at default-shaped budgets
# ----------------------------------------------------------------------


class TestValidSpace:
    def test_valid_search_finds_no_counterexample(self):
        report = search("valid", budget=25, seed=11)
        assert not report.found
        assert report.ok
        assert report.executions == 25

    def test_interesting_survivors_are_ranked_pass_fixtures(self):
        report = search("valid", budget=25, seed=11, max_interesting=2)
        assert len(report.interesting) <= 2
        for fixture in report.interesting:
            assert fixture["expect"] == "pass"
            assert fixture["origin"] == "interesting"
            assert fixture["summary"]["score"]["score"] >= 0.9

    def test_unknown_strategy_raises_with_catalog(self):
        with pytest.raises(UnknownStrategyError, match="known-bad"):
            search("bogus", budget=1)


# ----------------------------------------------------------------------
# Corpus: content-hashed files, idempotent promotion
# ----------------------------------------------------------------------

CASE = {
    "n": 4,
    "theta": 1.001,
    "d": 1.0,
    "u": 0.01,
    "adversary": "silent",
    "delay": "maximum",
    "drift": "random",
}


class TestCorpus:
    def make(self, **overrides):
        return make_fixture(
            CASE, 5, 7,
            strategy="valid", origin="seed", expect="pass",
            **overrides,
        )

    def test_identity_is_content_addressed(self):
        fixture = self.make()
        assert fixture["schema"] == FIXTURE_SCHEMA
        assert fixture["fixture_id"] == fixture_id(CASE, 5, 7)
        # Provenance never perturbs identity.
        scored = self.make(summary={"score": {"score": 1.0}})
        assert scored["fixture_id"] == fixture["fixture_id"]

    def test_expect_is_validated(self):
        with pytest.raises(ValueError, match="violation|pass"):
            make_fixture(
                CASE, 5, 7,
                strategy="valid", origin="seed", expect="bogus",
            )

    def test_save_load_roundtrip_is_byte_stable(self, tmp_path):
        fixture = self.make()
        path = save_fixture(fixture, str(tmp_path))
        assert path == fixture_path(fixture, str(tmp_path))
        assert load_fixture(path) == fixture
        first = open(path, "rb").read()
        save_fixture(fixture, str(tmp_path))
        assert open(path, "rb").read() == first
        assert list_fixtures(str(tmp_path)) == [path]

    def test_load_rejects_malformed_files(self, tmp_path):
        with pytest.raises(MalformedFixtureError, match="not found"):
            load_fixture(str(tmp_path / "missing.json"))
        bad = tmp_path / "fuzz-bad.json"
        bad.write_text("{not json")
        with pytest.raises(MalformedFixtureError, match="not valid JSON"):
            load_fixture(str(bad))
        bad.write_text(json.dumps({"schema": "other/v1"}))
        with pytest.raises(MalformedFixtureError, match="schema"):
            load_fixture(str(bad))
        stripped = {k: v for k, v in self.make().items() if k != "seed"}
        bad.write_text(json.dumps(stripped))
        with pytest.raises(MalformedFixtureError, match="seed"):
            load_fixture(str(bad))

    def test_promotion_is_idempotent(self, tmp_path):
        registry = ScenarioRegistry()
        fixture = self.make()
        key, path = promote_fixture(
            fixture, registry, directory=str(tmp_path)
        )
        assert key == fixture["fixture_id"]
        assert os.path.exists(path)
        assert registry.has("fuzz", key)
        # Re-promoting (and re-loading the directory) is a no-op.
        assert promote_fixture(
            fixture, registry, directory=str(tmp_path)
        )[0] == key
        assert load_promoted(registry, directory=str(tmp_path)) == [key]
        entry = registry.get("fuzz", key)
        assert "fuzz" in entry.tags and "pass" in entry.tags
        payload = registry.create("fuzz", key, None)
        assert payload == fixture
        # The factory hands out copies, not the shared object.
        payload["pulses"] = 99
        assert registry.create("fuzz", key, None)["pulses"] == 5


# ----------------------------------------------------------------------
# Determinism: byte-identical replay, trace-level independence
# ----------------------------------------------------------------------


def _replay_bytes(fixture, trace):
    run = replay_fixture(fixture, trace=trace)
    return json.dumps(
        verdict_payload(fixture, run), indent=2, sort_keys=True
    ).encode()


class TestDeterminism:
    def test_search_is_deterministic_in_its_triple(self, known_bad_report):
        again = search("known-bad", budget=25, seed=0)
        assert again.as_dict() == known_bad_report.as_dict()

    def test_replay_is_byte_identical_across_invocations(
        self, known_bad_report
    ):
        fixture = known_bad_report.counterexample
        assert _replay_bytes(fixture, "pulses") == _replay_bytes(
            fixture, "pulses"
        )

    def test_replay_is_trace_level_independent(self, known_bad_report):
        fixture = known_bad_report.counterexample
        assert _replay_bytes(fixture, "pulses") == _replay_bytes(
            fixture, "full"
        )

    def test_valid_case_replay_is_deterministic(self):
        payload = {"case": CASE, "pulses": 5, "seed": 3}
        first = run_fuzz_case(CASE, 5, 3)
        second = run_fuzz_case(CASE, 5, 3)
        fixture = make_fixture(
            payload["case"], 5, 3,
            strategy="valid", origin="seed", expect="pass",
        )
        assert verdict_payload(fixture, first) == verdict_payload(
            fixture, second
        )
        assert first.ok


# ----------------------------------------------------------------------
# Conformance: the fuzz mode judges recorded expectations
# ----------------------------------------------------------------------


class TestConformanceFuzzMode:
    def test_promoted_counterexample_passes_conformance(
        self, known_bad_report
    ):
        key = register_fixture(known_bad_report.counterexample)
        report = check_scenario("fuzz", key)
        assert report.mode == "fuzz"
        assert report.ok
        verdict = report.verdict_for("fuzz-expectation")
        assert verdict is not None and verdict.ok

    def test_expectation_mismatch_fails_conformance(self):
        # A passing case promoted with expect=violation must FAIL.
        fixture = make_fixture(
            CASE, 5, 7,
            strategy="valid", origin="seed", expect="violation",
        )
        registry = ScenarioRegistry()
        register_fixture(fixture, registry)
        run = replay_fixture(fixture)
        from repro.fuzz import expectation_verdict

        verdict = expectation_verdict(fixture, run)
        assert not verdict.ok
        assert verdict.violations[0].monitor == "fuzz-expectation"


# ----------------------------------------------------------------------
# CLI round-trip
# ----------------------------------------------------------------------


class TestCli:
    def test_run_list_replay_promote_roundtrip(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus")
        promoted = str(tmp_path / "promoted")
        assert main([
            "fuzz", "run", "--strategy", "known-bad",
            "--budget", "15", "--seed", "0", "--out", corpus,
        ]) == 0
        paths = list_fixtures(corpus)
        assert len(paths) == 1
        out = capsys.readouterr().out
        assert "COUNTEREXAMPLE" in out and paths[0] in out

        assert main(["fuzz", "list", "--dir", str(tmp_path)]) == 0
        assert "shrunk" in capsys.readouterr().out

        assert main(["fuzz", "replay", paths[0]]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["expectation_met"] and not payload["ok"]

        assert main([
            "fuzz", "promote", paths[0], "--dest", promoted,
        ]) == 0
        assert len(list_fixtures(promoted)) == 1

    def test_run_valid_space_exits_clean(self, tmp_path, capsys):
        assert main([
            "fuzz", "run", "--strategy", "valid", "--budget", "10",
            "--seed", "2", "--out", str(tmp_path), "--max-interesting", "1",
        ]) == 0
        assert "no monitor violations" in capsys.readouterr().out

    def test_unknown_strategy_exits_with_hint(self):
        with pytest.raises(SystemExit, match="available"):
            main(["fuzz", "run", "--strategy", "nope"])

    def test_check_fixture_rejects_unknown_name(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "fixture", "--fixture", "not-a-thing"])
