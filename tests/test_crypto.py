"""Unit tests for the symbolic signature scheme and PKI."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.pki import PublicKeyInfrastructure
from repro.crypto.signatures import (
    Signature,
    SignatureError,
    collect_signatures,
    verify,
)


@pytest.fixture()
def pki():
    return PublicKeyInfrastructure(4)


class TestPki:
    def test_issues_key_pairs_for_all_nodes(self, pki):
        for node_id in pki.node_ids():
            assert pki.key_pair(node_id).node_id == node_id

    def test_rejects_unknown_node(self, pki):
        with pytest.raises(KeyError):
            pki.key_pair(7)

    def test_rejects_empty_system(self):
        with pytest.raises(ValueError):
            PublicKeyInfrastructure(0)

    def test_two_pkis_issue_distinct_tokens(self):
        a = PublicKeyInfrastructure(2)
        b = PublicKeyInfrastructure(2)
        # Both can sign for node 0; signatures verify independently.
        assert verify(a.key_pair(0).sign("m"), 0, "m")
        assert verify(b.key_pair(0).sign("m"), 0, "m")


class TestSignatures:
    def test_sign_verify_roundtrip(self, pki):
        signature = pki.key_pair(1).sign(("pulse", 3))
        assert verify(signature, 1, ("pulse", 3))

    def test_verify_rejects_wrong_signer(self, pki):
        signature = pki.key_pair(1).sign("m")
        assert not verify(signature, 2, "m")

    def test_verify_rejects_wrong_message(self, pki):
        signature = pki.key_pair(1).sign("m")
        assert not verify(signature, 1, "other")

    def test_forging_raises(self, pki):
        with pytest.raises(SignatureError):
            Signature(0, "m", object())

    def test_key_identity_is_signer_and_value(self, pki):
        first = pki.key_pair(2).sign("m")
        second = pki.key_pair(2).sign("m")
        assert first.key() == second.key()

    def test_key_differs_across_messages(self, pki):
        assert (
            pki.key_pair(2).sign("a").key() != pki.key_pair(2).sign("b").key()
        )

    def test_cross_pki_token_cannot_sign_other_identity(self):
        a = PublicKeyInfrastructure(3)
        stolen = a.key_pair(0)._token
        with pytest.raises(SignatureError):
            Signature(1, "m", stolen)


class TestCollectSignatures:
    def test_collects_from_plain_signature(self, pki):
        signature = pki.key_pair(0).sign("m")
        assert list(collect_signatures(signature)) == [signature]

    def test_collects_from_nested_containers(self, pki):
        s1 = pki.key_pair(0).sign("a")
        s2 = pki.key_pair(1).sign("b")
        payload = {"x": [s1, (s2,)], "y": "no-sig"}
        assert set(collect_signatures(payload)) == {s1, s2}

    def test_collects_from_objects_with_signatures_method(self, pki):
        s1 = pki.key_pair(0).sign("a")

        class Payload:
            def signatures(self):
                return (s1,)

        assert list(collect_signatures(Payload())) == [s1]

    def test_non_signature_payloads_yield_nothing(self):
        assert list(collect_signatures(42)) == []
        assert list(collect_signatures("hello")) == []
        assert list(collect_signatures([1, 2, {"a": "b"}])) == []

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 100)), max_size=8
        )
    )
    def test_collect_finds_every_minted_signature(self, spec):
        pki = PublicKeyInfrastructure(4)
        signatures = [
            pki.key_pair(signer).sign(("v", value)) for signer, value in spec
        ]
        nested = [signatures[: len(signatures) // 2],
                  tuple(signatures[len(signatures) // 2 :])]
        collected = list(collect_signatures(nested))
        assert sorted(s.key() for s in collected) == sorted(
            s.key() for s in signatures
        )
