"""Scenario registry: catalog, lookups, campaign round-trip, CLI.

The satellite guarantees under test:

* the registry holds every ported entry plus the new scenarios, with
  metadata, and unknown keys raise with a did-you-mean hint;
* every registered delay policy emits model-admissible delays, every
  topology meets its advertised connectivity, every drift profile
  satisfies the paper's clock assumptions;
* a ``ScenarioSpec`` naming registry entries round-trips through the
  campaign executor (including store replay), and a misspelled key
  fails at *plan* time;
* ``repro scenarios list/show`` renders the catalog.
"""

import inspect

import pytest

from repro import scenarios
from repro.campaigns import (
    CampaignSpec,
    MeasurementSpec,
    ResultStore,
    ScenarioSpec,
    campaign_definition,
    execute_campaign,
)
from repro.cli import main
from repro.core.params import derive_parameters
from repro.scenarios import UnknownScenarioError
from repro.sim.clocks import EPS
from repro.sim.network import NetworkConfig


PARAMS = derive_parameters(1.001, 1.0, 0.01, 6)


# ----------------------------------------------------------------------
# Catalog contents and lookup semantics
# ----------------------------------------------------------------------


class TestCatalog:
    def test_registry_is_populated(self):
        assert len(scenarios.REGISTRY) >= 12
        for kind in scenarios.KINDS:
            if kind == "fuzz":
                # Fuzz fixtures register only at explicit promotion
                # time (other suites may already have promoted some),
                # so the kind is allowed to be empty.
                continue
            assert scenarios.entries(kind), f"no {kind} entries"

    def test_ported_entries_present(self):
        for key in ("silent", "replay", "mimic-split",
                    "equivocating-subset", "rushing-echo",
                    "extreme-values", "split-bot", "equivocating"):
            assert scenarios.has("adversary", key), key
        for key in ("maximum", "minimum", "constant-fraction", "random",
                    "biased-partition", "skewing", "fast-to-faulty"):
            assert scenarios.has("delay", key), key
        for key in ("complete", "circulant"):
            assert scenarios.has("topology", key), key
        for key in ("random", "extreme"):
            assert scenarios.has("drift", key), key

    def test_new_scenarios_present(self):
        new = [
            entry.qualified
            for entry in scenarios.entries()
            if "new" in entry.tags
        ]
        assert len(new) >= 6, new

    def test_unknown_key_raises_with_suggestion(self):
        with pytest.raises(UnknownScenarioError, match="did you mean"):
            scenarios.get("delay", "eclipse-")
        with pytest.raises(UnknownScenarioError, match="registered"):
            scenarios.get("adversary", "no-such-behaviour")

    def test_unknown_kind_rejected_at_registration(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            scenarios.register_scenario(
                "weather", "sunny", description="not a kind"
            )

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            scenarios.register_scenario(
                "delay", "maximum", description="dup"
            )(lambda n=None: None)

    def test_find_is_kind_qualified(self):
        assert len(scenarios.find("random")) == 2  # delay and drift
        assert [e.kind for e in scenarios.find("delay:random")] == [
            "delay"
        ]
        assert scenarios.find("nope") == []

    def test_entries_carry_metadata(self):
        entry = scenarios.get("delay", "eclipse")
        assert entry.description
        assert entry.paper_ref
        assert entry.params[0].name == "victims"

    def test_factory_overrides_apply(self):
        policy = scenarios.create("delay", "eclipse", 6, victims=(1, 2))
        assert policy.victims == {1, 2}
        with pytest.raises(TypeError):
            scenarios.create("delay", "eclipse", 6, nonsense=1)


# ----------------------------------------------------------------------
# Semantic checks per kind
# ----------------------------------------------------------------------


class TestDelayEntries:
    @pytest.mark.parametrize(
        "key", [e.key for e in scenarios.entries("delay")]
    )
    def test_all_delay_policies_emit_admissible_delays(self, key):
        config = NetworkConfig(n=6, d=1.0, u=0.05)
        policy = scenarios.create("delay", key, 6)
        for src, dst in ((0, 1), (1, 2), (0, 5), (4, 3)):
            for send_time in (0.0, 3.7, 12.5, 100.0):
                for honest in (True, False):
                    delay = policy.delay(
                        config, src, dst, send_time, None, honest
                    )
                    low, high = config.delay_bounds(honest)
                    assert low - EPS <= delay <= high + EPS

    def test_eclipse_semantics(self):
        config = NetworkConfig(n=4, d=1.0, u=0.2)
        policy = scenarios.create("delay", "eclipse", 4, victims=(0,))
        low, high = config.delay_bounds(True)
        assert policy.delay(config, 0, 1, 0.0, None, True) == high
        assert policy.delay(config, 2, 0, 0.0, None, True) == high
        assert policy.delay(config, 2, 3, 0.0, None, True) == low

    def test_flicker_partition_flips_with_time(self):
        config = NetworkConfig(n=4, d=1.0, u=0.2)
        policy = scenarios.create(
            "delay", "flicker-partition", 4, period=5.0
        )
        low, high = config.delay_bounds(True)
        # 0 and 2 share a group: fast in phase 0, slow in phase 1.
        assert policy.delay(config, 0, 2, 1.0, None, True) == low
        assert policy.delay(config, 0, 2, 6.0, None, True) == high
        # Cross-group is the mirror image.
        assert policy.delay(config, 0, 1, 1.0, None, True) == high
        assert policy.delay(config, 0, 1, 6.0, None, True) == low


class TestTopologyEntries:
    def test_topologies_meet_advertised_connectivity(self):
        import networkx as nx

        for key, kwargs, minimum in (
            ("complete", {}, 7),
            ("circulant", {}, 4),
            ("random-regular", {"degree": 4}, 4),
            ("small-world", {"k": 4}, 1),
        ):
            graph = scenarios.create("topology", key, 8, **kwargs)
            assert graph.number_of_nodes() == 8
            assert nx.is_connected(graph)
            assert nx.node_connectivity(graph) >= minimum, key

    def test_random_regular_is_deterministic_in_seed(self):
        a = scenarios.create("topology", "random-regular", 10, seed=3)
        b = scenarios.create("topology", "random-regular", 10, seed=3)
        assert sorted(a.edges) == sorted(b.edges)


class TestDriftEntries:
    @pytest.mark.parametrize(
        "key", [e.key for e in scenarios.entries("drift")]
    )
    def test_all_profiles_satisfy_model_assumptions(self, key):
        clocks = scenarios.create("drift", key, PARAMS, 7)
        assert len(clocks) == PARAMS.n
        for clock in clocks:
            # Construction validates rates against theta; check offsets.
            assert -EPS <= clock.offset_at_zero <= PARAMS.S + EPS

    def test_profiles_are_deterministic_in_seed(self):
        a = scenarios.create("drift", "mixed", PARAMS, 5)
        b = scenarios.create("drift", "mixed", PARAMS, 5)
        assert [c.local_time(13.7) for c in a] == [
            c.local_time(13.7) for c in b
        ]


# ----------------------------------------------------------------------
# Campaign round-trip with registry-named scenarios
# ----------------------------------------------------------------------


def _registry_spec(adversaries=("silent", "coordinated-offset")):
    return CampaignSpec(
        name="registry-roundtrip",
        seed=11,
        scenarios=(
            ScenarioSpec(
                builder="cps-stress",
                base={"n": 5, "u": 0.02, "drift": "staggered"},
                axes={
                    "*": {
                        "adversary": adversaries,
                        "delay": ("eclipse", "flicker-partition"),
                    }
                },
            ),
        ),
        measurements={"*": MeasurementSpec(pulses=4, warmup=1)},
    )


class TestRegistryCampaignRoundTrip:
    def test_executes_and_stays_within_bound(self):
        run = execute_campaign(_registry_spec())
        assert run.failed == 0
        assert len(run.records) == 4
        for record in run.records:
            assert record.metrics["live"]
            assert record.metrics["within"]

    def test_store_replay_is_byte_stable(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _registry_spec()
        live = execute_campaign(spec, store=store)
        replay = execute_campaign(spec, store=store)
        assert replay.executed == 0 and replay.cached == 4
        assert [r.metrics for r in live.records] == [
            r.metrics for r in replay.records
        ]

    def test_unknown_scenario_key_fails_at_plan_time(self):
        spec = _registry_spec(adversaries=("silentt",))
        with pytest.raises(UnknownScenarioError, match="did you mean"):
            spec.trials_for("quick")

    def test_topology_case_runs_overlay(self):
        spec = CampaignSpec(
            name="overlay",
            scenarios=(
                ScenarioSpec(
                    builder="cps-stress",
                    base={
                        "n": 7,
                        "u": 0.01,
                        "topology": "circulant",
                        "delay": "random",
                    },
                ),
            ),
            measurements={"*": MeasurementSpec(pulses=3, warmup=1)},
        )
        run = execute_campaign(spec)
        assert run.failed == 0
        (record,) = run.records
        assert record.metrics["d_eff"] > 1.0  # multi-hop overlay
        assert record.metrics["live"]


class TestStressCampaign:
    def test_registered_and_quick_tier_clean(self):
        definition = campaign_definition("STRESS")
        run = execute_campaign(definition.spec(), scale="quick")
        assert run.failed == 0
        table = definition.tabulate(run)
        assert any(table.column("live"))

    def test_e5_stress_tier_names_registry_delays(self):
        spec = campaign_definition("E5").spec()
        delays = {
            plan.case["delay"] for plan in spec.trials_for("stress")
        }
        assert delays == {"skewing", "eclipse", "flicker-partition"}
        for key in delays:
            assert scenarios.has("delay", key)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestScenariosCli:
    def test_list_shows_all_kinds_and_count(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for key in ("coordinated-offset", "eclipse", "small-world",
                    "staggered"):
            assert key in out
        assert f"{len(scenarios.REGISTRY)} registered scenarios" in out
        assert len(scenarios.REGISTRY) >= 12

    def test_list_kind_filter(self, capsys):
        assert main(["scenarios", "list", "--kind", "topology"]) == 0
        out = capsys.readouterr().out
        assert "small-world" in out
        assert "eclipse" not in out

    def test_show_renders_metadata(self, capsys):
        assert main(["scenarios", "show", "eclipse"]) == 0
        out = capsys.readouterr().out
        assert "delay:eclipse" in out
        assert "victims=None" in out
        assert "paper" in out

    def test_show_ambiguous_key_requires_kind(self, capsys):
        with pytest.raises(SystemExit, match="ambiguous"):
            main(["scenarios", "show", "random"])
        assert main(
            ["scenarios", "show", "random", "--kind", "drift"]
        ) == 0
        assert "drift:random" in capsys.readouterr().out

    def test_show_unknown_key_exits_with_hint(self):
        with pytest.raises(SystemExit, match="did you mean"):
            main(["scenarios", "show", "delay:eclipsee"])

    def test_show_unknown_bare_key_also_hints(self):
        with pytest.raises(SystemExit, match="coordinated-offset"):
            main(["scenarios", "show", "cordinated-offset"])

    def test_run_stress_experiment_renders_table(self, capsys):
        assert main(["run", "STRESS"]) == 0
        out = capsys.readouterr().out
        assert "registry-driven scenarios" in out


# ----------------------------------------------------------------------
# Schema conformance: declared ParamSpecs match factory signatures
# ----------------------------------------------------------------------

#: Positional context each kind's factories receive (the registry
#: docstring's conventions); ``fuzz`` entries exist only after explicit
#: promotion, so the import-time catalog has none to instantiate.
KIND_CONTEXT = {
    "adversary": (PARAMS,),
    "delay": (PARAMS.n,),
    "topology": (8,),
    "drift": (PARAMS, 0),
    "churn": (PARAMS,),
    "fuzz": (None,),
}


class TestSchemaConformance:
    @pytest.mark.parametrize(
        "qualified", [e.qualified for e in scenarios.entries()]
    )
    def test_declared_params_match_factory_signature(self, qualified):
        """Every ParamSpec names a real factory keyword, and explicit
        keyword defaults agree with the declared default."""
        kind, _, key = qualified.partition(":")
        entry = scenarios.get(kind, key)
        signature = inspect.signature(entry.factory)
        accepts_kwargs = any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in signature.parameters.values()
        )
        for spec in entry.params:
            parameter = signature.parameters.get(spec.name)
            assert parameter is not None or accepts_kwargs, (
                f"{qualified}: declared param {spec.name!r} is not a "
                f"factory keyword"
            )
            if (
                parameter is not None
                and parameter.default is not inspect.Parameter.empty
            ):
                assert parameter.default == spec.default, (
                    f"{qualified}: {spec.name} default drifted "
                    f"({parameter.default!r} != declared "
                    f"{spec.default!r})"
                )

    @pytest.mark.parametrize(
        "qualified", [e.qualified for e in scenarios.entries()]
    )
    def test_every_entry_instantiates_with_defaults(self, qualified):
        """Each factory accepts its kind's positional context with no
        overrides — the catalog's documented defaults actually build."""
        kind, _, key = qualified.partition(":")
        produced = scenarios.create(kind, key, *KIND_CONTEXT[kind])
        assert produced is not None

    @pytest.mark.parametrize(
        "qualified", [e.qualified for e in scenarios.entries()]
    )
    def test_catalog_metadata_is_complete(self, qualified):
        kind, _, key = qualified.partition(":")
        entry = scenarios.get(kind, key)
        assert entry.description, qualified
        payload = entry.as_dict()
        assert payload["kind"] == kind and payload["key"] == key
        assert set(payload["params"]) == {s.name for s in entry.params}
