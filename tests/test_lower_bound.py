"""Tests for the executable Theorem 5 construction."""

import pytest

from repro.core.cps import CpsNode
from repro.core.lower_bound import (
    FixedPeriodProtocol,
    LowerBoundEngine,
    ShiftFunction,
    run_lower_bound,
)
from repro.core.params import derive_parameters
from repro.sim.errors import ConfigurationError


class TestShiftFunction:
    def test_fast_phase(self):
        shift = ShiftFunction(theta=1.1, shift=0.5)
        assert shift(1.0) == pytest.approx(1.1)

    def test_saturated_phase(self):
        shift = ShiftFunction(theta=1.1, shift=0.5)
        assert shift(10.0) == pytest.approx(10.5)

    def test_saturation_time(self):
        shift = ShiftFunction(theta=1.1, shift=0.5)
        assert shift.saturation_time == pytest.approx(5.0)
        assert shift(5.0) == pytest.approx(5.5)

    def test_zero_shift_identity(self):
        shift = ShiftFunction(theta=1.1, shift=0.0)
        assert shift(3.0) == 3.0
        assert shift.inverse(3.0) == 3.0

    @pytest.mark.parametrize("x", [0.0, 0.5, 4.9, 5.0, 5.1, 100.0])
    def test_inverse_roundtrip(self, x):
        shift = ShiftFunction(theta=1.1, shift=0.5)
        assert shift.inverse(shift(x)) == pytest.approx(x)


class TestEngineValidation:
    def test_requires_drift(self):
        with pytest.raises(ConfigurationError):
            LowerBoundEngine(lambda v: FixedPeriodProtocol(1.0), 1.0, 1.0, 0.5)

    def test_requires_positive_u_tilde(self):
        with pytest.raises(ConfigurationError):
            LowerBoundEngine(
                lambda v: FixedPeriodProtocol(1.0), 1.05, 1.0, 0.0
            )

    def test_requires_u_tilde_at_most_d(self):
        with pytest.raises(ConfigurationError):
            LowerBoundEngine(
                lambda v: FixedPeriodProtocol(1.0), 1.05, 1.0, 1.5
            )

    def test_fixed_period_requires_positive_period(self):
        with pytest.raises(ConfigurationError):
            FixedPeriodProtocol(0.0)


class TestTranslationMaps:
    def test_next_neighbour_uses_fast_receiver(self):
        engine = LowerBoundEngine(
            lambda v: FixedPeriodProtocol(1.0), 1.1, 1.0, 0.3
        )
        # T(l) = F(l + d); before saturation F multiplies by theta.
        assert engine.reception_local_time(0, 1, 0.0) == pytest.approx(1.1)

    def test_prev_neighbour_uses_fast_sender_inverse(self):
        engine = LowerBoundEngine(
            lambda v: FixedPeriodProtocol(1.0), 1.1, 1.0, 0.3
        )
        # T(l) = F^{-1}(l) + d.
        assert engine.reception_local_time(0, 2, 1.1) == pytest.approx(2.0)

    def test_reception_always_after_send(self):
        engine = LowerBoundEngine(
            lambda v: FixedPeriodProtocol(1.0), 1.05, 1.0, 0.9
        )
        for src in range(3):
            for dst in range(3):
                if src == dst:
                    continue
                for local in (0.0, 1.0, 17.3, 200.0):
                    assert (
                        engine.reception_local_time(src, dst, local) > local
                    )


class TestTheorem5:
    def _check(self, result, u_tilde):
        saturated = result.saturated_pulse_indices()
        assert saturated, "run long enough to saturate the fast clocks"
        index = saturated[-1]
        assert result.theorem_identity(index) == pytest.approx(
            2.0 * u_tilde, abs=1e-6
        )
        assert result.max_skew_at(index) >= 2.0 * u_tilde / 3.0 - 1e-9

    @pytest.mark.parametrize("u_tilde", [0.15, 0.45, 0.9])
    def test_fixed_period_protocol(self, u_tilde):
        saturation = 2 * u_tilde / 3 / 0.02
        pulses = int(saturation / 1.5) + 5
        result = run_lower_bound(
            lambda v: FixedPeriodProtocol(2.0),
            theta=1.02,
            d=1.0,
            u_tilde=u_tilde,
            max_pulses=pulses,
        )
        self._check(result, u_tilde)

    @pytest.mark.parametrize("u_tilde", [0.3, 0.6])
    def test_cps_cannot_beat_the_bound(self, u_tilde):
        params = derive_parameters(1.02, 1.0, 0.0, 3, f=1)
        saturation = 2 * u_tilde / 3 / 0.02
        pulses = int(saturation / 1.5) + 5
        result = run_lower_bound(
            lambda v: CpsNode(params),
            theta=1.02,
            d=1.0,
            u_tilde=u_tilde,
            max_pulses=pulses,
        )
        self._check(result, u_tilde)
        # The lower bound exceeds CPS's honest-link guarantee: the skew is
        # governed by u_tilde even though u = 0.
        index = result.saturated_pulse_indices()[-1]
        if 2 * u_tilde / 3 > params.S:
            assert result.max_skew_at(index) > params.S

    def test_well_definedness_check_runs_for_cps(self):
        """Lemma 18's bookkeeping: every faulty send only uses signatures
        the adversary received early enough (raises otherwise)."""
        params = derive_parameters(1.02, 1.0, 0.0, 3, f=1)
        engine = LowerBoundEngine(
            lambda v: CpsNode(params), 1.02, 1.0, 0.45
        )
        engine.run(max_pulses=8)
        engine.check_well_defined()  # must not raise
        assert engine.messages  # CPS actually communicates

    def test_liveness_inside_the_construction(self):
        params = derive_parameters(1.02, 1.0, 0.0, 3, f=1)
        result = run_lower_bound(
            lambda v: CpsNode(params), 1.02, 1.0, 0.3, max_pulses=6
        )
        assert result.common_pulse_count() >= 6
        for k in range(3):
            for times in result.execution_pulses[k].values():
                assert all(b > a for a, b in zip(times, times[1:]))

    def test_execution_pulses_cover_honest_pairs(self):
        result = run_lower_bound(
            lambda v: FixedPeriodProtocol(2.0), 1.02, 1.0, 0.3, max_pulses=4
        )
        for k in range(3):
            assert sorted(result.execution_pulses[k]) == sorted(
                {(k + 1) % 3, (k + 2) % 3}
            )
