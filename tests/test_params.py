"""Tests for the Theorem 17 / Lemma 16 parameter derivation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.params import (
    THETA_MAX,
    InfeasibleParameters,
    ProtocolParameters,
    derive_parameters,
    max_faults,
)
from repro.sim.errors import ConfigurationError


class TestMaxFaults:
    @pytest.mark.parametrize(
        "n,expected",
        [(2, 0), (3, 1), (4, 1), (5, 2), (6, 2), (7, 3), (9, 4), (10, 4)],
    )
    def test_ceil_n_half_minus_one(self, n, expected):
        assert max_faults(n) == expected

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            max_faults(0)


class TestDerivation:
    def test_basic_shape(self):
        params = derive_parameters(1.001, 1.0, 0.01, 8)
        assert params.f == 3
        assert params.S > 0
        assert params.T > params.S
        params.check_feasible()

    def test_skew_is_order_u_plus_drift_d(self):
        """Corollary 4: S in Theta(u + (theta-1) d)."""
        base = derive_parameters(1.001, 1.0, 0.01, 8)
        # Scale u by 4 with tiny drift: S roughly scales with u.
        more_u = derive_parameters(1.0 + 1e-9, 1.0, 0.04, 8)
        less_u = derive_parameters(1.0 + 1e-9, 1.0, 0.01, 8)
        assert more_u.S == pytest.approx(4 * less_u.S, rel=1e-3)
        # Drift contributes proportionally to (theta - 1) d.
        drift_only_small = derive_parameters(1.0005, 1.0, 0.0, 8)
        drift_only_large = derive_parameters(1.001, 1.0, 0.0, 8)
        assert drift_only_large.S == pytest.approx(
            2 * drift_only_small.S, rel=0.05
        )
        assert base.S > 0

    def test_t_is_order_d(self):
        params = derive_parameters(1.001, 1.0, 0.001, 8)
        assert 1.0 < params.T < 10.0

    def test_theta_max_boundary(self):
        derive_parameters(THETA_MAX - 1e-4, 1.0, 0.01, 8)
        with pytest.raises(InfeasibleParameters):
            derive_parameters(THETA_MAX + 1e-4, 1.0, 0.01, 8)

    def test_theta_max_value(self):
        # Our derivation's constant (the paper's bookkeeping gives 1.11).
        assert 1.07 < THETA_MAX < 1.08

    def test_explicit_t_respected(self):
        params = derive_parameters(1.001, 1.0, 0.01, 8, T=5.0)
        assert params.T == 5.0
        params.check_feasible()

    def test_explicit_t_too_small_rejected(self):
        with pytest.raises(InfeasibleParameters):
            derive_parameters(1.001, 1.0, 0.01, 8, T=0.5)

    def test_slack_scales_s(self):
        tight = derive_parameters(1.001, 1.0, 0.01, 8)
        loose = derive_parameters(1.001, 1.0, 0.01, 8, slack=2.0)
        assert loose.S == pytest.approx(2 * tight.S)
        loose.check_feasible()

    def test_slack_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_parameters(1.001, 1.0, 0.01, 8, slack=0.5)

    def test_u_at_least_half_d_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_parameters(1.001, 1.0, 0.5, 8)

    def test_theta_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_parameters(0.99, 1.0, 0.01, 8)

    def test_perfect_model_degenerate_corner(self):
        params = derive_parameters(1.0, 1.0, 0.0, 4)
        assert params.S > 0  # tiny positive placeholder
        params.check_feasible()

    def test_with_system_rescales_f(self):
        params = derive_parameters(1.001, 1.0, 0.01, 8)
        bigger = params.with_system(12)
        assert bigger.n == 12
        assert bigger.f == max_faults(12)
        assert bigger.S == params.S

    @given(
        theta=st.floats(min_value=1.0, max_value=1.07),
        d=st.floats(min_value=0.1, max_value=100.0),
        u_fraction=st.floats(min_value=0.0, max_value=0.45),
        n=st.integers(min_value=2, max_value=33),
    )
    def test_derivation_always_feasible(self, theta, d, u_fraction, n):
        """Any admissible (theta, d, u) yields parameters passing every
        precondition of Lemma 16 and Corollary 15."""
        params = derive_parameters(theta, d, u_fraction * d, n)
        params.check_feasible()
        assert params.p_min_bound > 0
        assert params.p_max_bound >= params.p_min_bound


class TestDerivedQuantities:
    def setup_method(self):
        self.params = derive_parameters(1.002, 1.0, 0.05, 6)

    def test_delta_formula(self):
        theta, d, u, s = 1.002, 1.0, 0.05, self.params.S
        expected = (
            2 * u + (theta**2 - 1) * d + 2 * (theta**3 - theta**2) * s
        )
        assert self.params.delta == pytest.approx(expected)

    def test_window_formula(self):
        theta, d, s = 1.002, 1.0, self.params.S
        assert self.params.tcb_window == pytest.approx(
            theta * (d + (theta + 1) * s)
        )

    def test_finalize_wait(self):
        assert self.params.tcb_finalize_wait == pytest.approx(0.9)

    def test_dealer_send_offset(self):
        assert self.params.dealer_send_offset == pytest.approx(
            1.002 * self.params.S
        )

    def test_period_bounds(self):
        p = self.params
        assert p.p_min_bound == pytest.approx(
            (p.T - (p.theta + 1) * p.S) / p.theta
        )
        assert p.p_max_bound == pytest.approx(p.T + 3 * p.S)

    def test_consistency_window(self):
        p = self.params
        assert p.consistency_window == pytest.approx(
            (1 - 1 / p.theta) * p.d + 2 * p.u / p.theta
        )

    def test_invalid_direct_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolParameters(
                n=6, f=5, theta=1.002, d=1.0, u=0.05, T=3.0, S=0.1
            )
        with pytest.raises(ConfigurationError):
            ProtocolParameters(
                n=1, f=0, theta=1.002, d=1.0, u=0.05, T=3.0, S=0.1
            )
        with pytest.raises(ConfigurationError):
            ProtocolParameters(
                n=6, f=2, theta=1.002, d=1.0, u=0.05, T=3.0, S=-0.1
            )
