"""Integration tests for the timed discrete-event simulator."""

import pytest

from repro.sim.adversary import (
    ByzantineBehavior,
    HonestUntilCrash,
    ScheduledSendAdversary,
)
from repro.sim.clocks import HardwareClock
from repro.sim.errors import (
    ConfigurationError,
    ForgeryError,
    SimulationError,
)
from repro.sim.network import MaximumDelayPolicy, NetworkConfig
from repro.sim.runtime import NodeAPI, TimedProtocol
from repro.sim.scheduler import Simulation
from repro.sim.trace import DeliveryRecord, SendRecord


class EchoProtocol(TimedProtocol):
    """Test protocol: pulse at fixed local period; echo received payloads
    once; record everything."""

    def __init__(self, period: float = 10.0) -> None:
        self.period = period
        self.received = []
        self.signed = []

    def on_start(self, api: NodeAPI) -> None:
        api.set_timer(self.period, "tick")

    def on_message(self, api: NodeAPI, sender: int, payload) -> None:
        self.received.append((sender, payload, api.local_time()))

    def on_timer(self, api: NodeAPI, tag) -> None:
        api.pulse()
        if len(self.received) == 0:
            api.broadcast(("hello", api.node_id))
        api.set_timer(api.local_time() + self.period, "tick")


def build(n=3, faulty=(), behavior=None, clocks=None, policy=None, f=None):
    config = NetworkConfig(n, d=1.0, u=0.2)
    clocks = clocks or [HardwareClock.constant_rate() for _ in range(n)]
    return Simulation(
        config,
        clocks,
        protocol_factory=lambda v: EchoProtocol(),
        faulty=faulty,
        behavior=behavior,
        delay_policy=policy or MaximumDelayPolicy(),
        f=f,
    )


class TestBasicMechanics:
    def test_requires_stop_condition(self):
        with pytest.raises(ConfigurationError):
            build().run()

    def test_clock_count_must_match(self):
        config = NetworkConfig(3, d=1.0, u=0.2)
        with pytest.raises(ConfigurationError):
            Simulation(
                config,
                [HardwareClock.constant_rate()],
                protocol_factory=lambda v: EchoProtocol(),
            )

    def test_faulty_count_checked_against_f(self):
        with pytest.raises(ConfigurationError):
            build(faulty=[0, 1], f=1)

    def test_faulty_ids_in_range(self):
        with pytest.raises(ConfigurationError):
            build(faulty=[7])

    def test_pulses_recorded_per_node(self):
        sim = build()
        result = sim.run(max_pulses=3)
        for v in range(3):
            assert len(result.pulses[v]) >= 3
            assert result.pulses[v][0] == pytest.approx(10.0)

    def test_max_pulses_stops_promptly(self):
        result = build().run(max_pulses=2)
        assert all(len(result.pulses[v]) == 2 for v in range(3))

    def test_until_stops_by_time(self):
        result = build().run(until=25.0)
        assert result.end_time <= 25.0 + 1e-9
        assert all(len(result.pulses[v]) == 2 for v in range(3))

    def test_event_cap_raises(self):
        with pytest.raises(SimulationError):
            build().run(max_pulses=1000, max_events=10)

    def test_broadcast_reaches_all_others(self):
        sim = build()
        sim.run(max_pulses=2)
        for v in range(3):
            protocol = sim.protocol(v)
            senders = {sender for sender, _, _ in protocol.received}
            assert senders == {w for w in range(3) if w != v}

    def test_delivery_delay_respected(self):
        sim = build()
        result = sim.run(max_pulses=2)
        sends = {
            (r.src, r.dst): r.time for r in result.trace.of_type(SendRecord)
        }
        for record in result.trace.of_type(DeliveryRecord):
            assert record.time == pytest.approx(
                sends[(record.src, record.dst)] + 1.0
            )

    def test_local_time_follows_clock(self):
        clocks = [
            HardwareClock.constant_rate(1.1, theta=1.1),
            HardwareClock.constant_rate(1.0, theta=1.1),
            HardwareClock.constant_rate(1.0, theta=1.1),
        ]
        sim = build(clocks=clocks)
        result = sim.run(max_pulses=1)
        # Fast node pulses first: local 10 reached at t = 10/1.1.
        assert result.pulses[0][0] == pytest.approx(10.0 / 1.1)
        assert result.pulses[1][0] == pytest.approx(10.0)

    def test_past_timer_warns_but_fires(self):
        class PastTimer(TimedProtocol):
            def on_start(self, api):
                api.set_timer(5.0, "future")

            def on_message(self, api, sender, payload):
                pass

            def on_timer(self, api, tag):
                if tag == "future":
                    api.set_timer(1.0, "past")  # already passed
                else:
                    api.pulse()

        config = NetworkConfig(1, d=1.0, u=0.0)
        sim = Simulation(
            config,
            [HardwareClock.constant_rate()],
            protocol_factory=lambda v: PastTimer(),
        )
        result = sim.run(max_pulses=1)
        assert len(result.pulses[0]) == 1
        assert any("past" in w for w in result.warnings)


class TestAdversaryContext:
    def test_scheduled_sends_are_delivered(self):
        def payload_fn(ctx):
            return ("fake", 2)

        behavior = ScheduledSendAdversary({3.0: [(2, 0, payload_fn, 1.0)]})
        sim = build(faulty=[2], behavior=behavior)
        sim.run(max_pulses=2)
        received = sim.protocol(0).received
        assert (2, ("fake", 2), 4.0) in received

    def test_adversary_cannot_send_from_honest(self):
        class BadBehavior(ByzantineBehavior):
            def on_start(self, ctx):
                ctx.send_from(0, 1, "spoof")

        with pytest.raises(SimulationError):
            build(faulty=[2], behavior=BadBehavior()).run(max_pulses=1)

    def test_adversary_cannot_sign_for_honest(self):
        class BadSigner(ByzantineBehavior):
            def on_start(self, ctx):
                ctx.sign_as(0, "m")

        with pytest.raises(SimulationError):
            build(faulty=[2], behavior=BadSigner()).run(max_pulses=1)

    def test_forgery_is_blocked(self):
        class Forger(ByzantineBehavior):
            def on_start(self, ctx):
                ctx.wake_at(0.5, "go")

            def on_wakeup(self, ctx, tag):
                # Node 0's signature was never delivered to a faulty node.
                from repro.crypto.pki import PublicKeyInfrastructure

                other = PublicKeyInfrastructure(3)
                ctx.send_from(2, 0, other.key_pair(0).sign("m"))

        with pytest.raises(ForgeryError):
            build(faulty=[2], behavior=Forger()).run(max_pulses=2)

    def test_replaying_learned_signature_is_allowed(self):
        sent = []

        class Replayer(ByzantineBehavior):
            def on_deliver(self, ctx, record):
                if not sent:
                    sent.append(record.payload)
                    ctx.send_from(2, 0, record.payload)

        class Signer(EchoProtocol):
            def on_timer(self, api, tag):
                api.pulse()
                api.broadcast(api.sign(("v", api.node_id)))
                api.set_timer(api.local_time() + self.period, "tick")

        config = NetworkConfig(3, d=1.0, u=0.2)
        sim = Simulation(
            config,
            [HardwareClock.constant_rate() for _ in range(3)],
            protocol_factory=lambda v: Signer(),
            faulty=[2],
            behavior=Replayer(),
        )
        sim.run(max_pulses=3)
        assert sent  # the replay happened without ForgeryError

    def test_adversary_observes_pulses(self):
        seen = []

        class Observer(ByzantineBehavior):
            def on_pulse(self, ctx, node, index, time):
                seen.append((node, index, time))

        build(faulty=[2], behavior=Observer()).run(max_pulses=2)
        assert (0, 1, 10.0) in seen

    def test_wakeup_in_past_rejected(self):
        class TimeTraveller(ByzantineBehavior):
            def on_pulse(self, ctx, node, index, time):
                ctx.wake_at(time - 5.0, "nope")

        with pytest.raises(SimulationError):
            build(faulty=[2], behavior=TimeTraveller()).run(max_pulses=2)

    def test_explicit_delay_validated(self):
        class TooFast(ByzantineBehavior):
            def on_start(self, ctx):
                ctx.send_from(2, 0, "m", delay=0.1)

        from repro.sim.errors import ModelViolation

        with pytest.raises(ModelViolation):
            build(faulty=[2], behavior=TooFast()).run(max_pulses=1)


class TestHonestUntilCrash:
    def test_hosted_protocol_behaves_honestly(self):
        behavior = HonestUntilCrash(lambda v: EchoProtocol())
        sim = build(faulty=[2], behavior=behavior)
        sim.run(max_pulses=2)
        # Honest node 0 heard from the hosted faulty node 2.
        senders = {s for s, _, _ in sim.protocol(0).received}
        assert 2 in senders
        assert behavior.hosted_pulses[2]

    def test_crash_silences_node(self):
        behavior = HonestUntilCrash(
            lambda v: EchoProtocol(), default_crash_time=5.0
        )
        sim = build(faulty=[2], behavior=behavior)
        sim.run(max_pulses=3)
        senders = {s for s, _, _ in sim.protocol(0).received}
        # First broadcast would happen at t=10 > crash time 5.
        assert 2 not in senders
