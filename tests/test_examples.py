"""Smoke tests: every example script runs to completion.

Each example ends with hard assertions on the paper's guarantees, so
"runs to completion" is a meaningful check, not just an import test.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
SCRIPTS = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_examples_present():
    assert len(SCRIPTS) >= 5
    assert "quickstart.py" in SCRIPTS


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate their results"
