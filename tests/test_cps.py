"""Integration tests for Algorithm CPS against Theorem 17's guarantees."""

import pytest

from repro.analysis.metrics import (
    check_liveness,
    max_period,
    max_skew,
    min_period,
    skew_trajectory,
)
from repro.core.attacks import (
    CpsEquivocatingSubsetAttack,
    CpsMimicDealerAttack,
    CpsRushingEchoAttack,
    FastToFaultyDelayPolicy,
)
from repro.core.cps import CpsNode, assemble_cps_simulation, default_clocks
from repro.core.params import derive_parameters
from repro.sim.adversary import ReplayAdversary, SilentAdversary
from repro.sim.clocks import HardwareClock
from repro.sim.errors import ConfigurationError
from repro.sim.network import (
    BiasedPartitionDelayPolicy,
    RandomDelayPolicy,
    SkewingDelayPolicy,
)
from repro.sync.crusader import BOT

PULSES = 12


def run_cps(params, pulses=PULSES, **kwargs):
    simulation = assemble_cps_simulation(params, **kwargs)
    result = simulation.run(max_pulses=pulses)
    return simulation, result


def assert_theorem17(params, result, pulses=PULSES):
    honest = result.honest_pulses()
    assert check_liveness(honest, pulses)
    assert max_skew(honest) <= params.S + 1e-9
    assert min_period(honest) >= params.p_min_bound - 1e-9
    assert max_period(honest) <= params.p_max_bound + 1e-9


@pytest.fixture(scope="module")
def params6():
    return derive_parameters(1.001, 1.0, 0.02, 6)


@pytest.fixture(scope="module")
def params9():
    return derive_parameters(1.002, 1.0, 0.05, 9)


def group_a(n):
    return [v for v in range(n) if v % 2 == 0]


class TestFaultFree:
    def test_bounds_with_random_everything(self, params6):
        _, result = run_cps(
            params6,
            delay_policy=RandomDelayPolicy(seed=1),
            seed=1,
        )
        assert_theorem17(params6, result)
        assert not result.warnings

    def test_bounds_with_extreme_clocks(self, params6):
        _, result = run_cps(
            params6,
            delay_policy=SkewingDelayPolicy(group_a(6)),
            clock_style="extreme",
        )
        assert_theorem17(params6, result)

    def test_skew_contracts_from_initial_offset(self, params6):
        _, result = run_cps(params6, clock_style="extreme")
        trajectory = skew_trajectory(result.honest_pulses())
        assert trajectory[0] == pytest.approx(params6.S, rel=1e-6)
        assert min(trajectory) < params6.S / 4

    def test_no_honest_dealer_rejected(self, params6):
        """Lemma 10 as an executable assertion."""
        simulation, result = run_cps(
            params6,
            delay_policy=SkewingDelayPolicy(group_a(6)),
            clock_style="extreme",
        )
        for record in result.trace.protocol_events("cps-round"):
            assert record.details.num_bot == 0


ADVERSARIES = {
    "silent": lambda p: SilentAdversary(),
    "mimic-split": lambda p: CpsMimicDealerAttack(p, group_a(p.n)),
    "equivocating-subset": lambda p: CpsEquivocatingSubsetAttack(p),
    "replay": lambda p: ReplayAdversary(seed=0),
}


class TestByzantine:
    @pytest.mark.parametrize("name", sorted(ADVERSARIES))
    def test_bounds_at_max_resilience_n6(self, params6, name):
        faulty = list(range(6 - params6.f, 6))
        _, result = run_cps(
            params6,
            faulty=faulty,
            behavior=ADVERSARIES[name](params6),
            delay_policy=SkewingDelayPolicy(group_a(6)),
            clock_style="extreme",
        )
        assert_theorem17(params6, result)

    @pytest.mark.parametrize("name", sorted(ADVERSARIES))
    def test_bounds_at_max_resilience_n9(self, params9, name):
        faulty = list(range(9 - params9.f, 9))
        _, result = run_cps(
            params9,
            faulty=faulty,
            behavior=ADVERSARIES[name](params9),
            delay_policy=BiasedPartitionDelayPolicy(group_a(9)),
            seed=7,
        )
        assert_theorem17(params9, result)

    def test_fewer_faults_than_f_also_fine(self, params6):
        _, result = run_cps(
            params6,
            faulty=[5],
            behavior=CpsMimicDealerAttack(params6, group_a(6)),
        )
        assert_theorem17(params6, result)

    def test_silent_faulty_all_become_bot(self, params6):
        faulty = list(range(6 - params6.f, 6))
        simulation, result = run_cps(
            params6, faulty=faulty, behavior=SilentAdversary()
        )
        for record in result.trace.protocol_events("cps-round"):
            for w in faulty:
                assert record.details.estimates[w] is BOT

    def test_mimic_dealers_are_accepted(self, params6):
        """The in-window split stays under the Lemma 11 tolerance, so the
        faulty dealers' broadcasts are *not* rejected (they attack through
        estimate spread, not through ⊥)."""
        faulty = list(range(6 - params6.f, 6))
        simulation, result = run_cps(
            params6,
            faulty=faulty,
            behavior=CpsMimicDealerAttack(params6, group_a(6)),
        )
        accepted = 0
        for record in result.trace.protocol_events("cps-round"):
            if record.details.pulse_round < 2:
                continue  # attack arms itself after the first pulse
            for w in faulty:
                if record.details.estimates[w] is not BOT:
                    accepted += 1
        assert accepted > 0

    def test_lemma13_consistency_for_accepted_faulty(self, params6):
        faulty = list(range(6 - params6.f, 6))
        simulation, result = run_cps(
            params6,
            faulty=faulty,
            behavior=CpsMimicDealerAttack(params6, group_a(6)),
        )
        honest_pulses = result.honest_pulses()
        honest = sorted(honest_pulses)
        for r in range(PULSES):
            for x in faulty:
                estimates = {}
                for v in honest:
                    summaries = simulation.protocol(v).summaries
                    if r < len(summaries):
                        estimate = summaries[r].estimates.get(x)
                        if estimate is not None and estimate is not BOT:
                            estimates[v] = estimate
                for v in estimates:
                    for w in estimates:
                        gap = abs(
                            estimates[v]
                            - estimates[w]
                            - (honest_pulses[w][r] - honest_pulses[v][r])
                        )
                        assert gap < params6.delta + 1e-9

    def test_lemma12_validity_for_honest_dealers(self, params6):
        simulation, result = run_cps(
            params6, delay_policy=RandomDelayPolicy(seed=5), seed=5
        )
        honest_pulses = result.honest_pulses()
        for v in sorted(honest_pulses):
            for summary in simulation.protocol(v).summaries:
                r = summary.pulse_round - 1
                for w, estimate in summary.estimates.items():
                    if w == v or estimate is BOT:
                        continue
                    true_offset = honest_pulses[w][r] - honest_pulses[v][r]
                    assert estimate >= true_offset - 1e-9
                    assert estimate < true_offset + params6.delta


class TestUtildeGap:
    def test_rushing_echo_harmless_at_u_tilde_equal_u(self, params6):
        faulty = list(range(6 - params6.f, 6))
        _, result = run_cps(
            params6,
            faulty=faulty,
            behavior=CpsRushingEchoAttack(),
            delay_policy=FastToFaultyDelayPolicy(),
        )
        assert_theorem17(params6, result)

    def test_rushing_echo_breaks_lemma10_when_u_tilde_larger(self, params6):
        faulty = list(range(6 - params6.f, 6))
        simulation, result = run_cps(
            params6,
            faulty=faulty,
            behavior=CpsRushingEchoAttack(),
            delay_policy=FastToFaultyDelayPolicy(),
            u_tilde=8 * params6.u,
            clock_style="extreme",
        )
        honest = set(result.honest)
        honest_rejections = sum(
            1
            for record in result.trace.protocol_events("cps-round")
            for w, estimate in record.details.estimates.items()
            if estimate is BOT and w in honest
        )
        assert honest_rejections > 0


class TestAblationsAndConfig:
    def test_invalid_discard_rule(self, params6):
        with pytest.raises(ConfigurationError):
            CpsNode(params6, discard_rule="median")

    def test_discard_f_rule_fails_at_max_resilience(self, params6):
        faulty = list(range(6 - params6.f, 6))
        simulation = assemble_cps_simulation(
            params6,
            faulty=faulty,
            behavior=SilentAdversary(),
            discard_rule="f",
        )
        from repro.sim.errors import SimulationError

        with pytest.raises(SimulationError):
            simulation.run(max_pulses=3)

    def test_initial_offsets_beyond_s_rejected(self, params6):
        from repro.sim.errors import ClockError

        clocks = [
            HardwareClock.constant_rate(1.0, offset=3 * params6.S)
            if v == 0
            else HardwareClock.constant_rate(1.0)
            for v in range(6)
        ]
        with pytest.raises(ClockError):
            assemble_cps_simulation(params6, clocks=clocks)

    def test_default_clock_styles(self, params6):
        assert len(default_clocks(params6, style="random")) == 6
        assert len(default_clocks(params6, style="extreme")) == 6
        with pytest.raises(ConfigurationError):
            default_clocks(params6, style="nope")

    def test_round_summaries_record_corrections(self, params6):
        simulation, result = run_cps(params6, pulses=5)
        node = simulation.protocol(0)
        assert len(node.summaries) >= 4
        for summary in node.summaries:
            low, high = summary.interval
            assert low <= summary.correction <= high
